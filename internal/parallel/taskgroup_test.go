package parallel

import (
	"errors"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func TestTaskGroupRunsAllTasks(t *testing.T) {
	g := NewTaskGroup(3)
	var ran atomic.Int32
	for i := 0; i < 50; i++ {
		g.Go(func() error {
			ran.Add(1)
			return nil
		})
	}
	if err := g.Wait(); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if got := ran.Load(); got != 50 {
		t.Errorf("ran %d tasks, want 50", got)
	}
}

func TestTaskGroupBoundsConcurrency(t *testing.T) {
	const width = 3
	g := NewTaskGroup(width)
	var cur, max atomic.Int32
	for i := 0; i < 30; i++ {
		g.Go(func() error {
			c := cur.Add(1)
			for {
				m := max.Load()
				if c <= m || max.CompareAndSwap(m, c) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			cur.Add(-1)
			return nil
		})
	}
	if err := g.Wait(); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if got := max.Load(); got > width {
		t.Errorf("observed %d concurrent tasks, want <= %d", got, width)
	}
}

func TestTaskGroupRetainsFirstError(t *testing.T) {
	errA := errors.New("a")
	g := NewTaskGroup(1) // serial execution makes "first" deterministic
	g.Go(func() error { return nil })
	g.Go(func() error { return errA })
	g.Go(func() error { return errors.New("b") })
	if err := g.Wait(); !errors.Is(err, errA) {
		t.Errorf("Wait = %v, want %v", err, errA)
	}
	// Reuse after failure keeps reporting the first failure.
	g.Go(func() error { return nil })
	if err := g.Wait(); !errors.Is(err, errA) {
		t.Errorf("Wait after reuse = %v, want %v", err, errA)
	}
}

func TestTaskGroupReusableAcrossBarriers(t *testing.T) {
	// Mirrors the paper's Stage I taskwait followed by Stage II tasks.
	g := NewTaskGroup(4)
	var stage1 atomic.Int32
	g.Go(func() error { stage1.Add(1); return nil })
	g.Go(func() error { stage1.Add(1); return nil })
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	if stage1.Load() != 2 {
		t.Fatalf("stage 1 ran %d tasks, want 2", stage1.Load())
	}
	var stage2 atomic.Int32
	for i := 0; i < 4; i++ {
		g.Go(func() error { stage2.Add(1); return nil })
	}
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	if stage2.Load() != 4 {
		t.Errorf("stage 2 ran %d tasks, want 4", stage2.Load())
	}
}

func TestRunTasks(t *testing.T) {
	var a, b, c atomic.Bool
	err := RunTasks(2,
		func() error { a.Store(true); return nil },
		func() error { b.Store(true); return nil },
		func() error { c.Store(true); return nil },
	)
	if err != nil {
		t.Fatalf("RunTasks: %v", err)
	}
	if !a.Load() || !b.Load() || !c.Load() {
		t.Error("not all tasks ran")
	}
}

// Property: a TaskGroup of any width completes exactly the spawned number of
// tasks, no more, no fewer.
func TestTaskGroupCompletesExactly(t *testing.T) {
	f := func(widthRaw uint8, nRaw uint8) bool {
		width := int(widthRaw%8) + 1
		n := int(nRaw % 64)
		g := NewTaskGroup(width)
		var ran atomic.Int32
		for i := 0; i < n; i++ {
			g.Go(func() error { ran.Add(1); return nil })
		}
		if err := g.Wait(); err != nil {
			return false
		}
		return ran.Load() == int32(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPoolRunsSubmittedTasks(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var ran atomic.Int32
	joins := make([]func(), 0, 20)
	for i := 0; i < 20; i++ {
		join, err := p.Submit(func() { ran.Add(1) })
		if err != nil {
			t.Fatalf("Submit: %v", err)
		}
		joins = append(joins, join)
	}
	for _, j := range joins {
		j()
	}
	if got := ran.Load(); got != 20 {
		t.Errorf("ran %d, want 20", got)
	}
}

func TestPoolSubmitAfterClose(t *testing.T) {
	p := NewPool(1)
	p.Close()
	p.Close() // idempotent
	if _, err := p.Submit(func() {}); !errors.Is(err, ErrPoolClosed) {
		t.Errorf("Submit after Close = %v, want ErrPoolClosed", err)
	}
}
