package parallel

import (
	"errors"
	"sync"
)

// ErrPoolClosed is returned by Pool.Submit after Close has been called.
var ErrPoolClosed = errors.New("parallel: pool is closed")

// Pool is a fixed-size worker pool that amortizes goroutine startup across
// many submissions.  The pipeline drivers create one pool per run and feed
// every parallel stage through it, the way an OpenMP runtime keeps a single
// thread team alive across parallel regions.
type Pool struct {
	tasks chan func()
	wg    sync.WaitGroup

	mu     sync.Mutex
	closed bool
}

// NewPool starts a pool with the given number of workers (0 = all
// processors).  Close must be called to release the workers.
func NewPool(workers int) *Pool {
	w := Workers(workers)
	p := &Pool{tasks: make(chan func())}
	p.wg.Add(w)
	for i := 0; i < w; i++ {
		go func() {
			defer p.wg.Done()
			for task := range p.tasks {
				task()
			}
		}()
	}
	return p
}

// Submit schedules task on the pool and returns a function that blocks until
// the task has finished, so callers can choose between fire-and-forget and
// join semantics.
func (p *Pool) Submit(task func()) (join func(), err error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, ErrPoolClosed
	}
	done := make(chan struct{})
	p.tasks <- func() {
		defer close(done)
		task()
	}
	p.mu.Unlock()
	return func() { <-done }, nil
}

// Close stops accepting tasks and waits for in-flight tasks to finish.
// Close is idempotent.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	close(p.tasks)
	p.mu.Unlock()
	p.wg.Wait()
}
