package parallel

import (
	"errors"
	"sync"
	"time"
)

// ErrPoolClosed is returned by Pool.Submit after Close has been called.
var ErrPoolClosed = errors.New("parallel: pool is closed")

// Pool is a fixed-size worker pool that amortizes goroutine startup across
// many submissions.  The pipeline drivers create one pool per run and feed
// every parallel stage through it, the way an OpenMP runtime keeps a single
// thread team alive across parallel regions.
type Pool struct {
	tasks chan func()
	mon   Monitor
	wg    sync.WaitGroup

	mu     sync.Mutex
	closed bool
}

// NewPool starts a pool with the given number of workers (0 = all
// processors).  Close must be called to release the workers.
func NewPool(workers int) *Pool {
	return NewPoolMonitored(workers, nil)
}

// NewPoolMonitored is NewPool with a Monitor: on Close every worker reports
// one WorkerSpan (busy = time in tasks, idle = time waiting on the queue),
// and if mon is also a WaitMonitor every submission reports its
// queue wait (submit-to-start latency).
func NewPoolMonitored(workers int, mon Monitor) *Pool {
	w := Workers(workers)
	p := &Pool{tasks: make(chan func()), mon: mon}
	p.wg.Add(w)
	for i := 0; i < w; i++ {
		worker := i
		go func() {
			defer p.wg.Done()
			if mon == nil {
				for task := range p.tasks {
					task()
				}
				return
			}
			var busy time.Duration
			tasks := 0
			start := time.Now()
			for task := range p.tasks {
				t0 := time.Now()
				task()
				busy += time.Since(t0)
				tasks++
			}
			mon.WorkerSpan(worker, busy, time.Since(start)-busy, tasks)
		}()
	}
	return p
}

// Submit schedules task on the pool and returns a function that blocks until
// the task has finished, so callers can choose between fire-and-forget and
// join semantics.
func (p *Pool) Submit(task func()) (join func(), err error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, ErrPoolClosed
	}
	done := make(chan struct{})
	run := task
	if wm, ok := p.mon.(WaitMonitor); ok {
		submitted := time.Now()
		run = func() {
			wm.TaskWait(time.Since(submitted))
			task()
		}
	}
	p.tasks <- func() {
		defer close(done)
		run()
	}
	p.mu.Unlock()
	return func() { <-done }, nil
}

// Close stops accepting tasks and waits for in-flight tasks to finish.
// Close is idempotent.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	close(p.tasks)
	p.mu.Unlock()
	p.wg.Wait()
}
