package parallel

import (
	"sync"
	"sync/atomic"
	"time"
)

// ParallelFor runs body(i) for every i in [0, n) using the given number of
// workers (0 means all processors) with static scheduling.  It is the Go
// equivalent of
//
//	#pragma omp parallel for
//	for (int i = 0; i < n; i++) body(i);
//
// The call returns after every iteration has completed.  If any body call
// returns a non-nil error, ParallelFor returns the error of the smallest
// failing index; all iterations still run (matching the OpenMP model, where
// a loop cannot break early).
func ParallelFor(n, workers int, body func(i int) error) error {
	return parallelFor(n, workers, ScheduleStatic, 0, nil, body)
}

// ParallelForDynamic runs body(i) for every i in [0, n) with dynamic
// scheduling: workers pull chunkSize iterations at a time from a shared
// counter.  A chunkSize <= 0 selects chunk size 1, like schedule(dynamic).
func ParallelForDynamic(n, workers, chunkSize int, body func(i int) error) error {
	return parallelFor(n, workers, ScheduleDynamic, chunkSize, nil, body)
}

// ParallelForSched runs body(i) for every i in [0, n) with an explicit
// schedule, allowing the scheduling policy itself to be benchmarked.
func ParallelForSched(n, workers int, sched Schedule, chunkSize int, body func(i int) error) error {
	return parallelFor(n, workers, sched, chunkSize, nil, body)
}

// ParallelForMonitored is ParallelFor with an explicit schedule and a
// Monitor receiving per-worker busy/idle accounting.  A nil mon is the
// uninstrumented loop.
func ParallelForMonitored(n, workers int, sched Schedule, chunkSize int, mon Monitor, body func(i int) error) error {
	return parallelFor(n, workers, sched, chunkSize, mon, body)
}

func parallelFor(n, workers int, sched Schedule, chunkSize int, mon Monitor, body func(i int) error) error {
	if n <= 0 {
		return nil
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	if w == 1 {
		if mon == nil {
			return serialFor(n, body)
		}
		var busy time.Duration
		var tasks int
		start := time.Now()
		err := serialFor(n, monitoredBody(body, &busy, &tasks))
		mon.WorkerSpan(0, busy, time.Since(start)-busy, tasks)
		return err
	}

	// Per-worker accounting: each worker accumulates its own busy time and
	// task count (no sharing, no atomics on the hot path); idle is charged
	// after the join barrier as the construct's wall time minus busy, i.e.
	// the time the construct held the worker while it had nothing to run.
	var (
		busies  []time.Duration
		counts  []int
		started time.Time
	)
	wrap := func(t int, body func(int) error) func(int) error { return body }
	if mon != nil {
		busies = make([]time.Duration, w)
		counts = make([]int, w)
		started = time.Now()
		wrap = func(t int, body func(int) error) func(int) error {
			return monitoredBody(body, &busies[t], &counts[t])
		}
	}

	// firstErr records the error from the smallest failing index so the
	// reported failure is deterministic regardless of interleaving; real
	// errors displace cancellation errors so fail-fast loops report the
	// cause, not the cancellation it triggered.
	var (
		mu       sync.Mutex
		firstErr error
		firstIdx int
	)
	record := func(i int, err error) {
		if err == nil {
			return
		}
		mu.Lock()
		if betterError(err, i, firstErr, firstIdx) {
			firstErr, firstIdx = err, i
		}
		mu.Unlock()
	}

	var wg sync.WaitGroup
	wg.Add(w)
	switch sched {
	case ScheduleGuided:
		// Guided self-scheduling: each claim takes remaining/w iterations
		// (at least chunkSize), so early claims are large and cheap while the
		// tail is fine-grained enough that no worker is left holding a big
		// block behind the join barrier.
		if chunkSize <= 0 {
			chunkSize = 1
		}
		var next atomic.Int64
		for t := 0; t < w; t++ {
			run := wrap(t, body)
			go func() {
				defer wg.Done()
				for {
					cur := next.Load()
					if cur >= int64(n) {
						return
					}
					size := (n - int(cur)) / w
					if size < chunkSize {
						size = chunkSize
					}
					if !next.CompareAndSwap(cur, cur+int64(size)) {
						continue
					}
					end := int(cur) + size
					if end > n {
						end = n
					}
					for i := int(cur); i < end; i++ {
						record(i, run(i))
					}
				}
			}()
		}
	case ScheduleDynamic:
		if chunkSize <= 0 {
			chunkSize = 1
		}
		var next atomic.Int64
		for t := 0; t < w; t++ {
			run := wrap(t, body)
			go func() {
				defer wg.Done()
				for {
					start := int(next.Add(int64(chunkSize))) - chunkSize
					if start >= n {
						return
					}
					end := start + chunkSize
					if end > n {
						end = n
					}
					for i := start; i < end; i++ {
						record(i, run(i))
					}
				}
			}()
		}
	default: // ScheduleStatic
		// Split [0,n) into w nearly equal contiguous blocks.
		base, rem := n/w, n%w
		start := 0
		for t := 0; t < w; t++ {
			size := base
			if t < rem {
				size++
			}
			lo, hi := start, start+size
			start = hi
			run := wrap(t, body)
			go func() {
				defer wg.Done()
				for i := lo; i < hi; i++ {
					record(i, run(i))
				}
			}()
		}
	}
	wg.Wait()
	if mon != nil {
		wall := time.Since(started)
		for t := 0; t < w; t++ {
			idle := wall - busies[t]
			if idle < 0 {
				idle = 0
			}
			mon.WorkerSpan(t, busies[t], idle, counts[t])
		}
	}
	return firstErr
}

func serialFor(n int, body func(i int) error) error {
	var firstErr error
	var firstIdx int
	for i := 0; i < n; i++ {
		if err := body(i); err != nil && betterError(err, i, firstErr, firstIdx) {
			firstErr, firstIdx = err, i
		}
	}
	return firstErr
}

// ParallelRange runs body(lo, hi) on contiguous sub-ranges of [0, n) with one
// range per worker.  It is useful when the body wants to amortize per-worker
// setup (scratch buffers, open files) across its whole block, the same way
// OpenMP code hoists private allocations out of the loop.
func ParallelRange(n, workers int, body func(lo, hi int) error) error {
	if n <= 0 {
		return nil
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	if w == 1 {
		return body(0, n)
	}
	var (
		mu       sync.Mutex
		firstErr error
		firstLo  int
	)
	var wg sync.WaitGroup
	wg.Add(w)
	base, rem := n/w, n%w
	start := 0
	for t := 0; t < w; t++ {
		size := base
		if t < rem {
			size++
		}
		lo, hi := start, start+size
		start = hi
		go func() {
			defer wg.Done()
			if err := body(lo, hi); err != nil {
				mu.Lock()
				if betterError(err, lo, firstErr, firstLo) {
					firstErr, firstLo = err, lo
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	return firstErr
}
