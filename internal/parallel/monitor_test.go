package parallel

import (
	"sync"
	"testing"
	"time"
)

// recordingMonitor captures WorkerSpan and TaskWait calls; safe for
// concurrent use like the contract requires.
type recordingMonitor struct {
	mu    sync.Mutex
	spans []workerSpan
	waits []time.Duration
}

type workerSpan struct {
	worker     int
	busy, idle time.Duration
	tasks      int
}

func (m *recordingMonitor) WorkerSpan(worker int, busy, idle time.Duration, tasks int) {
	m.mu.Lock()
	m.spans = append(m.spans, workerSpan{worker, busy, idle, tasks})
	m.mu.Unlock()
}

func (m *recordingMonitor) TaskWait(d time.Duration) {
	m.mu.Lock()
	m.waits = append(m.waits, d)
	m.mu.Unlock()
}

func (m *recordingMonitor) totalTasks() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, s := range m.spans {
		n += s.tasks
	}
	return n
}

func TestParallelForMonitoredAccountsEveryIteration(t *testing.T) {
	const n, workers = 100, 4
	mon := &recordingMonitor{}
	err := ParallelForMonitored(n, workers, ScheduleStatic, 0, mon, func(i int) error {
		time.Sleep(100 * time.Microsecond)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(mon.spans) != workers {
		t.Fatalf("worker spans = %d, want %d", len(mon.spans), workers)
	}
	if got := mon.totalTasks(); got != n {
		t.Errorf("tasks = %d, want %d", got, n)
	}
	seen := map[int]bool{}
	for _, s := range mon.spans {
		if s.worker < 0 || s.worker >= workers {
			t.Errorf("worker id %d out of range", s.worker)
		}
		if seen[s.worker] {
			t.Errorf("worker %d reported twice", s.worker)
		}
		seen[s.worker] = true
		if s.busy <= 0 {
			t.Errorf("worker %d busy = %v", s.worker, s.busy)
		}
		if s.idle < 0 {
			t.Errorf("worker %d idle = %v", s.worker, s.idle)
		}
	}
}

func TestParallelForMonitoredSerialPath(t *testing.T) {
	mon := &recordingMonitor{}
	err := ParallelForMonitored(7, 1, ScheduleDynamic, 1, mon, func(i int) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(mon.spans) != 1 || mon.spans[0].worker != 0 || mon.spans[0].tasks != 7 {
		t.Errorf("serial spans = %+v", mon.spans)
	}
}

func TestParallelForDynamicMonitored(t *testing.T) {
	const n = 64
	mon := &recordingMonitor{}
	err := ParallelForMonitored(n, 3, ScheduleDynamic, 4, mon, func(i int) error {
		time.Sleep(time.Duration(i%5) * 10 * time.Microsecond)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := mon.totalTasks(); got != n {
		t.Errorf("tasks = %d, want %d", got, n)
	}
}

// TestGuidedScheduleImprovesOccupancyOnSkewedLoads is the straggler-fix
// check: with iteration costs growing along the index range, static blocks
// leave the early workers idling behind the block holding the expensive
// tail, while guided claims shrink toward the tail and rebalance it.  The
// monitored loop must report less aggregate idle time under guided than
// under static scheduling.
func TestGuidedScheduleImprovesOccupancyOnSkewedLoads(t *testing.T) {
	const n, workers = 32, 4
	body := func(i int) error {
		// Cost grows with the index: the last static block costs ~4x the
		// first, mimicking stage-IX records sorted small to large.
		time.Sleep(time.Duration(i/8+1) * 2 * time.Millisecond)
		return nil
	}
	run := func(sched Schedule) (busy, idle time.Duration) {
		mon := &recordingMonitor{}
		if err := ParallelForMonitored(n, workers, sched, 1, mon, body); err != nil {
			t.Fatal(err)
		}
		mon.mu.Lock()
		defer mon.mu.Unlock()
		for _, s := range mon.spans {
			busy += s.busy
			idle += s.idle
		}
		return busy, idle
	}
	staticBusy, staticIdle := run(ScheduleStatic)
	guidedBusy, guidedIdle := run(ScheduleGuided)
	staticOcc := float64(staticBusy) / float64(staticBusy+staticIdle)
	guidedOcc := float64(guidedBusy) / float64(guidedBusy+guidedIdle)
	if guidedOcc <= staticOcc {
		t.Errorf("guided occupancy %.3f not better than static %.3f (idle %v vs %v)",
			guidedOcc, staticOcc, guidedIdle, staticIdle)
	}
}

func TestRunTasksMonitoredReportsEveryTask(t *testing.T) {
	const tasks = 6
	mon := &recordingMonitor{}
	fns := make([]func() error, tasks)
	for i := range fns {
		fns[i] = func() error {
			time.Sleep(100 * time.Microsecond)
			return nil
		}
	}
	if err := RunTasksMonitored(2, mon, fns...); err != nil {
		t.Fatal(err)
	}
	if len(mon.spans) != tasks {
		t.Fatalf("spans = %d, want one per task", len(mon.spans))
	}
	for _, s := range mon.spans {
		if s.worker != -1 {
			t.Errorf("task span worker = %d, want -1", s.worker)
		}
		if s.tasks != 1 || s.busy <= 0 || s.idle < 0 {
			t.Errorf("task span = %+v", s)
		}
	}
	if len(mon.waits) != tasks {
		t.Errorf("queue waits = %d, want %d", len(mon.waits), tasks)
	}
}

func TestPoolMonitoredReportsOnClose(t *testing.T) {
	const workers, tasks = 2, 5
	mon := &recordingMonitor{}
	p := NewPoolMonitored(workers, mon)
	var joins []func()
	for i := 0; i < tasks; i++ {
		join, err := p.Submit(func() { time.Sleep(100 * time.Microsecond) })
		if err != nil {
			t.Fatal(err)
		}
		joins = append(joins, join)
	}
	for _, j := range joins {
		j()
	}
	// Nothing is reported until the pool winds down.
	if len(mon.spans) != 0 {
		t.Errorf("spans before Close = %d", len(mon.spans))
	}
	p.Close()
	if len(mon.spans) != workers {
		t.Fatalf("spans = %d, want %d", len(mon.spans), workers)
	}
	if got := mon.totalTasks(); got != tasks {
		t.Errorf("tasks = %d, want %d", got, tasks)
	}
	if len(mon.waits) != tasks {
		t.Errorf("queue waits = %d, want %d", len(mon.waits), tasks)
	}
}
