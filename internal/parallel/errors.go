package parallel

import (
	"context"
	"errors"
)

// isCancellation reports whether err is (or wraps) context cancellation.
// The parallel constructs use it to keep the *first real cause* of a
// failure: when one iteration fails and fail-fast cancellation makes every
// sibling return "context canceled", the construct must still report the
// error that triggered the cancellation, not the cancellation itself.
func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// betterError reports whether (err, idx) should replace (cur, curIdx) as a
// construct's reported failure: a real error always beats a cancellation
// error, and within the same class the smallest index wins, keeping the
// report deterministic regardless of goroutine interleaving.
func betterError(err error, idx int, cur error, curIdx int) bool {
	if cur == nil {
		return true
	}
	ec, cc := isCancellation(err), isCancellation(cur)
	if ec != cc {
		return cc
	}
	return idx < curIdx
}

// FirstCause accumulates a deterministic construct-level error across
// indexed completions, using the same selection rule as the parallel loops:
// a real error always displaces a cancellation error, and within the same
// class the smallest index wins.  The zero value is ready to use; it is not
// safe for concurrent Offer calls — serialize under the caller's lock.
//
// Exported so higher-level fan-outs (pipeline.RunBatch, internal/fleet) can
// report "the first real cause" rather than whichever cancellation happened
// to land first.
type FirstCause struct {
	err error
	idx int
}

// Offer records the completion of index idx; nil errors are ignored.
func (f *FirstCause) Offer(idx int, err error) {
	if err == nil {
		return
	}
	if betterError(err, idx, f.err, f.idx) {
		f.err, f.idx = err, idx
	}
}

// Err returns the selected error, or nil if every offered completion
// succeeded.
func (f *FirstCause) Err() error { return f.err }

// Index returns the index whose error was selected (meaningful only when
// Err is non-nil).
func (f *FirstCause) Index() int { return f.idx }
