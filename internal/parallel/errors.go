package parallel

import (
	"context"
	"errors"
)

// isCancellation reports whether err is (or wraps) context cancellation.
// The parallel constructs use it to keep the *first real cause* of a
// failure: when one iteration fails and fail-fast cancellation makes every
// sibling return "context canceled", the construct must still report the
// error that triggered the cancellation, not the cancellation itself.
func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// betterError reports whether (err, idx) should replace (cur, curIdx) as a
// construct's reported failure: a real error always beats a cancellation
// error, and within the same class the smallest index wins, keeping the
// report deterministic regardless of goroutine interleaving.
func betterError(err error, idx int, cur error, curIdx int) bool {
	if cur == nil {
		return true
	}
	ec, cc := isCancellation(err), isCancellation(cur)
	if ec != cc {
		return cc
	}
	return idx < curIdx
}
