package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestParallelForRunsEveryIndexExactlyOnce(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 7, 64, 1000} {
		for _, workers := range []int{0, 1, 2, 3, 8, 100} {
			name := fmt.Sprintf("n=%d/workers=%d", n, workers)
			t.Run(name, func(t *testing.T) {
				counts := make([]atomic.Int32, n)
				err := ParallelFor(n, workers, func(i int) error {
					counts[i].Add(1)
					return nil
				})
				if err != nil {
					t.Fatalf("ParallelFor: %v", err)
				}
				for i := range counts {
					if got := counts[i].Load(); got != 1 {
						t.Errorf("index %d ran %d times, want 1", i, got)
					}
				}
			})
		}
	}
}

func TestParallelForDynamicRunsEveryIndexExactlyOnce(t *testing.T) {
	for _, chunk := range []int{0, 1, 3, 17, 1000} {
		t.Run(fmt.Sprintf("chunk=%d", chunk), func(t *testing.T) {
			const n = 257
			counts := make([]atomic.Int32, n)
			err := ParallelForDynamic(n, 4, chunk, func(i int) error {
				counts[i].Add(1)
				return nil
			})
			if err != nil {
				t.Fatalf("ParallelForDynamic: %v", err)
			}
			for i := range counts {
				if got := counts[i].Load(); got != 1 {
					t.Errorf("index %d ran %d times, want 1", i, got)
				}
			}
		})
	}
}

func TestParallelForGuidedRunsEveryIndexExactlyOnce(t *testing.T) {
	for _, chunk := range []int{0, 1, 3, 17, 1000} {
		for _, workers := range []int{1, 2, 4, 9} {
			t.Run(fmt.Sprintf("chunk=%d/w=%d", chunk, workers), func(t *testing.T) {
				const n = 257
				counts := make([]atomic.Int32, n)
				err := ParallelForSched(n, workers, ScheduleGuided, chunk, func(i int) error {
					counts[i].Add(1)
					return nil
				})
				if err != nil {
					t.Fatalf("guided: %v", err)
				}
				for i := range counts {
					if got := counts[i].Load(); got != 1 {
						t.Errorf("index %d ran %d times, want 1", i, got)
					}
				}
			})
		}
	}
}

func TestParallelForReportsSmallestFailingIndex(t *testing.T) {
	errBoom := errors.New("boom")
	for _, sched := range []Schedule{ScheduleStatic, ScheduleDynamic, ScheduleGuided} {
		t.Run(sched.String(), func(t *testing.T) {
			err := ParallelForSched(100, 4, sched, 1, func(i int) error {
				if i%10 == 3 {
					return fmt.Errorf("index %d: %w", i, errBoom)
				}
				return nil
			})
			if !errors.Is(err, errBoom) {
				t.Fatalf("error = %v, want wrapped errBoom", err)
			}
			if got := err.Error(); got != "index 3: boom" {
				t.Errorf("error = %q, want the smallest failing index (3)", got)
			}
		})
	}
}

func TestParallelForZeroAndNegativeN(t *testing.T) {
	ran := false
	if err := ParallelFor(0, 4, func(int) error { ran = true; return nil }); err != nil {
		t.Fatalf("n=0: %v", err)
	}
	if err := ParallelFor(-5, 4, func(int) error { ran = true; return nil }); err != nil {
		t.Fatalf("n=-5: %v", err)
	}
	if ran {
		t.Error("body ran for non-positive n")
	}
}

func TestParallelRangeCoversWholeRangeWithoutOverlap(t *testing.T) {
	for _, n := range []int{1, 5, 64, 999} {
		for _, workers := range []int{1, 2, 7, 64} {
			t.Run(fmt.Sprintf("n=%d/w=%d", n, workers), func(t *testing.T) {
				counts := make([]atomic.Int32, n)
				err := ParallelRange(n, workers, func(lo, hi int) error {
					if lo >= hi {
						return fmt.Errorf("empty range [%d,%d)", lo, hi)
					}
					for i := lo; i < hi; i++ {
						counts[i].Add(1)
					}
					return nil
				})
				if err != nil {
					t.Fatalf("ParallelRange: %v", err)
				}
				for i := range counts {
					if got := counts[i].Load(); got != 1 {
						t.Errorf("index %d covered %d times, want 1", i, got)
					}
				}
			})
		}
	}
}

// Property: for any body computing a pure function of the index, ParallelFor
// fills an output slice identically to a serial loop, for every schedule.
func TestParallelForEquivalentToSerialLoop(t *testing.T) {
	f := func(seed int64, nRaw uint16, workersRaw uint8, dynamic bool) bool {
		n := int(nRaw%512) + 1
		workers := int(workersRaw%9) + 1
		body := func(i int) int64 { return seed*int64(i) + int64(i*i) }

		want := make([]int64, n)
		for i := 0; i < n; i++ {
			want[i] = body(i)
		}
		got := make([]int64, n)
		var err error
		if dynamic {
			err = ParallelForDynamic(n, workers, 3, func(i int) error {
				got[i] = body(i)
				return nil
			})
		} else {
			err = ParallelFor(n, workers, func(i int) error {
				got[i] = body(i)
				return nil
			})
		}
		if err != nil {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestWorkersNormalization(t *testing.T) {
	max := runtime.GOMAXPROCS(0)
	cases := []struct{ in, want int }{
		{-1, max}, {0, max}, {1, 1}, {7, 7}, {1000, 1000},
	}
	for _, c := range cases {
		if got := Workers(c.in); got != c.want {
			t.Errorf("Workers(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestScheduleString(t *testing.T) {
	if ScheduleStatic.String() != "static" || ScheduleDynamic.String() != "dynamic" {
		t.Errorf("unexpected names: %v %v", ScheduleStatic, ScheduleDynamic)
	}
	if ScheduleGuided.String() != "guided" {
		t.Errorf("guided schedule = %q", ScheduleGuided.String())
	}
	if got := Schedule(42).String(); got != "Schedule(42)" {
		t.Errorf("unknown schedule = %q", got)
	}
}
