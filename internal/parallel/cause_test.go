package parallel

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

var errReal = errors.New("disk on fire")

// TestParallelForPrefersRealCauseOverCancellation models fail-fast
// propagation: one iteration reports the real failure while the rest are
// torn down with context.Canceled.  The construct must report the cause.
func TestParallelForPrefersRealCauseOverCancellation(t *testing.T) {
	for _, workers := range []int{1, 4} {
		err := ParallelFor(8, workers, func(i int) error {
			if i == 5 {
				return fmt.Errorf("iteration %d: %w", i, errReal)
			}
			return context.Canceled
		})
		if !errors.Is(err, errReal) {
			t.Errorf("workers=%d: reported %v, want the real cause", workers, err)
		}
	}
}

func TestParallelForDeterministicWinnerWithinClass(t *testing.T) {
	// All-real errors: the smallest failing index must win regardless of
	// scheduling.
	for trial := 0; trial < 10; trial++ {
		err := ParallelFor(16, 8, func(i int) error {
			if i >= 3 {
				return fmt.Errorf("index %d: %w", i, errReal)
			}
			return nil
		})
		if err == nil || err.Error() != "index 3: disk on fire" {
			t.Fatalf("trial %d: reported %v, want index 3", trial, err)
		}
	}
}

func TestParallelForAllCancelledStaysCancelled(t *testing.T) {
	err := ParallelFor(4, 2, func(i int) error { return context.Canceled })
	if !errors.Is(err, context.Canceled) {
		t.Errorf("reported %v, want context.Canceled", err)
	}
}

func TestParallelRangePrefersRealCause(t *testing.T) {
	err := ParallelRange(8, 4, func(lo, hi int) error {
		if lo == 0 {
			return context.DeadlineExceeded
		}
		return errReal
	})
	if !errors.Is(err, errReal) {
		t.Errorf("reported %v, want the real cause", err)
	}
}

// TestTaskGroupUpgradesCancellationToRealCause submits a cancellation
// failure first, then a real one: Wait must return the real cause even
// though it arrived second.
func TestTaskGroupUpgradesCancellationToRealCause(t *testing.T) {
	g := NewTaskGroup(1) // one worker serialises the tasks in order
	var first atomic.Bool
	g.Go(func() error {
		first.Store(true)
		return context.Canceled
	})
	g.Go(func() error {
		if !first.Load() {
			t.Error("tasks ran out of order on one worker")
		}
		return errReal
	})
	if err := g.Wait(); !errors.Is(err, errReal) {
		t.Errorf("Wait() = %v, want the real cause", err)
	}
}

func TestTaskGroupKeepsFirstRealCause(t *testing.T) {
	other := errors.New("second failure")
	g := NewTaskGroup(1)
	g.Go(func() error { return errReal })
	g.Go(func() error { return other })
	g.Go(func() error { return context.Canceled })
	if err := g.Wait(); !errors.Is(err, errReal) {
		t.Errorf("Wait() = %v, want the first real cause", err)
	}
}

func TestBetterError(t *testing.T) {
	cancel := context.Canceled
	cases := []struct {
		name   string
		err    error
		idx    int
		cur    error
		curIdx int
		want   bool
	}{
		{"first error wins over nil", errReal, 3, nil, 0, true},
		{"real beats cancellation", errReal, 9, cancel, 1, true},
		{"cancellation loses to real", cancel, 1, errReal, 9, false},
		{"same class smaller index wins", errReal, 2, errReal, 5, true},
		{"same class larger index loses", errReal, 5, errReal, 2, false},
		{"cancellations ordered by index", cancel, 0, cancel, 4, true},
	}
	for _, c := range cases {
		if got := betterError(c.err, c.idx, c.cur, c.curIdx); got != c.want {
			t.Errorf("%s: betterError = %v, want %v", c.name, got, c.want)
		}
	}
}
