package dataflow

import (
	"container/heap"
	"time"
)

// Order returns the node IDs in serial priority-dispatch order: the order a
// single-worker Execute would run them, popping the highest critical-path
// priority among ready nodes after each completion.  The simulated platform
// executes bodies serially in this order, measuring real per-node costs,
// then charges the virtual clock via SimMakespan.
func (g *Graph) Order() []NodeID {
	n := len(g.nodes)
	if n == 0 {
		return nil
	}
	g.prioritize()
	indeg := make([]int, n)
	var ready readyHeap
	for _, nd := range g.nodes {
		// Stream edges are treated as ordered here: the serial platform runs
		// one body at a time, so a consumer must follow its producer — its
		// stream is fully buffered (spilled) by then and drains immediately.
		indeg[nd.id] = len(nd.deps) + len(nd.sdeps)
		if indeg[nd.id] == 0 {
			heap.Push(&ready, nd)
		}
	}
	order := make([]NodeID, 0, n)
	for len(ready) > 0 {
		nd := heap.Pop(&ready).(*node)
		order = append(order, nd.id)
		for _, c := range nd.children {
			indeg[c]--
			if indeg[c] == 0 {
				heap.Push(&ready, g.nodes[c])
			}
		}
		for _, c := range nd.schildren {
			indeg[c]--
			if indeg[c] == 0 {
				heap.Push(&ready, g.nodes[c])
			}
		}
	}
	return order
}

// freeHeap is a min-heap of simulated worker finish times.
type freeHeap []time.Duration

func (h freeHeap) Len() int           { return len(h) }
func (h freeHeap) Less(i, j int) bool { return h[i] < h[j] }
func (h freeHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *freeHeap) Push(x any)        { *h = append(*h, x.(time.Duration)) }
func (h *freeHeap) Pop() any          { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

// SimMakespan returns the wall time the graph would take on w simulated
// workers under greedy critical-path-first list scheduling, where node i
// costs durs[i] scaled by the contention slowdown 1 + alpha_i*(w-1) — the
// same linear model as internal/simsched, but with a per-node coefficient
// because a dataflow pool mixes compute-bound and I/O-bound nodes.
//
// durs must be indexed by NodeID and hold the serially measured costs.
// Nodes are committed in priority order to the earliest-free worker, never
// before their last dependency finishes; because a node's finish time is
// fixed at commit time, releases cascade within the loop and the schedule
// is deterministic.
func (g *Graph) SimMakespan(durs []time.Duration, workers int) time.Duration {
	n := len(g.nodes)
	if n == 0 {
		return 0
	}
	w := workers
	if w < 1 {
		w = 1
	}
	if w > n {
		w = n
	}
	g.prioritize()
	indeg := make([]int, n)
	readyAt := make([]time.Duration, n)
	var ready readyHeap
	for _, nd := range g.nodes {
		indeg[nd.id] = len(nd.deps) + len(nd.sdeps)
		if indeg[nd.id] == 0 {
			heap.Push(&ready, nd)
		}
	}
	free := make(freeHeap, w)
	heap.Init(&free)
	var makespan time.Duration
	for len(ready) > 0 {
		nd := heap.Pop(&ready).(*node)
		tw := heap.Pop(&free).(time.Duration)
		start := tw
		if r := readyAt[nd.id]; r > start {
			start = r
		}
		slow := 1.0
		if w > 1 {
			slow = 1 + nd.spec.Alpha*float64(w-1)
		}
		finish := start + time.Duration(float64(durs[nd.id])*slow)
		heap.Push(&free, finish)
		if finish > makespan {
			makespan = finish
		}
		for _, c := range nd.children {
			indeg[c]--
			if readyAt[c] < finish {
				readyAt[c] = finish
			}
			if indeg[c] == 0 {
				heap.Push(&ready, g.nodes[c])
			}
		}
		// Stream consumers could in principle overlap the producer from its
		// start, but the serially measured consumer cost assumes its inputs
		// were already buffered; charging the producer's finish keeps the
		// simulated makespan an upper bound rather than an optimistic guess.
		for _, c := range nd.schildren {
			indeg[c]--
			if readyAt[c] < finish {
				readyAt[c] = finish
			}
			if indeg[c] == 0 {
				heap.Push(&ready, g.nodes[c])
			}
		}
	}
	return makespan
}
