package dataflow

import (
	"errors"
	"fmt"
	"math"
	"reflect"
	"sync"
	"testing"
)

// buildTieGraph constructs a graph whose ready set repeatedly holds nodes of
// equal priority AND equal weight, so dispatch order is decided purely by the
// NodeID tie-break: a root fanning out to three identical branches of two
// identical chains each.
func buildTieGraph(record func(NodeID)) *Graph {
	g := New()
	add := func(w float64, deps ...NodeID) NodeID {
		var id NodeID
		id = g.Add(Spec{
			Label:  fmt.Sprintf("n%d", g.Len()),
			Weight: w,
			Run:    func() error { record(id); return nil },
		}, deps...)
		return id
	}
	root := add(1)
	for b := 0; b < 3; b++ {
		head := add(2, root)
		mid := add(2, head)
		add(2, mid)
	}
	return g
}

// TestExecuteScheduleDeterministicAtOneWorker pins satellite contract: at
// workers=1 the dispatch order is a pure function of the graph, identical
// across runs even when every ready node ties on priority and weight.
func TestExecuteScheduleDeterministicAtOneWorker(t *testing.T) {
	run := func() []NodeID {
		var mu sync.Mutex
		var order []NodeID
		g := buildTieGraph(func(id NodeID) {
			mu.Lock()
			order = append(order, id)
			mu.Unlock()
		})
		if _, err := g.Execute(1, nil); err != nil {
			t.Fatalf("Execute: %v", err)
		}
		return order
	}
	first := run()
	if len(first) != 10 {
		t.Fatalf("executed %d nodes, want 10", len(first))
	}
	for i := 0; i < 5; i++ {
		if got := run(); !reflect.DeepEqual(got, first) {
			t.Fatalf("run %d schedule %v differs from first %v", i, got, first)
		}
	}
	// The order must also match the serial priority-dispatch Order(): the two
	// code paths share the readyHeap total order.
	g := buildTieGraph(func(NodeID) {})
	if want := g.Order(); !reflect.DeepEqual(first, want) {
		t.Fatalf("Execute(1) order %v != Order() %v", first, want)
	}
}

// TestAddClampsNaNWeight: a NaN weight would make readyHeap's float
// comparisons non-transitive and the schedule heap-layout-dependent.
func TestAddClampsNaNWeight(t *testing.T) {
	g := New()
	id := g.Add(Spec{Label: "nan", Weight: math.NaN(), Run: noop})
	g.Add(Spec{Label: "neg", Weight: -5, Run: noop})
	g.prioritize()
	if w := g.nodes[id].spec.Weight; w != 0 {
		t.Fatalf("NaN weight stored as %v, want 0", w)
	}
	if p := g.nodes[id].pri; math.IsNaN(p) || p != 0 {
		t.Fatalf("priority = %v, want 0", p)
	}
}

func TestTrackerMirrorsExecuteSemantics(t *testing.T) {
	g := New()
	boom := errors.New("boom")
	a := g.Add(Spec{Label: "a", Weight: 4, Run: noop})
	b := g.Add(Spec{Label: "b", Weight: 3, Run: func() error { return boom }})
	c := g.Add(Spec{Label: "c", Weight: 2, Run: noop}, b)    // skipped
	d := g.Add(Spec{Label: "d", Weight: 1, Run: noop}, a, c) // skipped transitively
	e := g.Add(Spec{Label: "e", Weight: 1, Run: noop}, a)    // independent branch survives
	tr := NewTracker(g)
	if got := tr.InitialReady(); !reflect.DeepEqual(got, []NodeID{a, b}) {
		t.Fatalf("InitialReady = %v, want [%d %d]", got, a, b)
	}
	ready, skipped := tr.Complete(a, nil)
	if !reflect.DeepEqual(ready, []NodeID{e}) || len(skipped) != 0 {
		t.Fatalf("after a: ready=%v skipped=%v", ready, skipped)
	}
	ready, skipped = tr.Complete(b, boom)
	// c resolves skipped immediately; d's last dependency (c) resolves within
	// the same cascade, so d is skipped too.
	if !reflect.DeepEqual(skipped, []NodeID{c, d}) || len(ready) != 0 {
		t.Fatalf("after b: ready=%v skipped=%v, want skipped [%d %d]", ready, skipped, c, d)
	}
	if tr.Done() {
		t.Fatal("Done before e completed")
	}
	if _, _ = tr.Complete(e, nil); !tr.Done() {
		t.Fatal("not Done after all nodes resolved")
	}
	if !errors.Is(tr.Err(), boom) {
		t.Fatalf("Err = %v, want boom", tr.Err())
	}
	if got, want := tr.Priority(a), 4.0+1; got != want {
		t.Fatalf("Priority(a) = %v, want %v", got, want)
	}
	if got, want := tr.Priority(b), 3.0+2+1; got != want {
		t.Fatalf("Priority(b) = %v, want %v", got, want)
	}
	if tr.Weight(d) != 1 || tr.Label(d) != "d" {
		t.Fatalf("Weight/Label accessors wrong for d")
	}
}
