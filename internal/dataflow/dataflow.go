// Package dataflow is a record-level task-DAG scheduler: it executes a
// directed acyclic graph of tasks on a bounded worker pool, dispatching
// ready nodes critical-path-first.
//
// The pipeline's staged drivers synchronize at an inter-stage barrier after
// every stage, so each stage costs the *maximum* over records — a single
// 384K-point station stalls stations that finished long ago.  This package
// removes those barriers: a node becomes runnable the moment its declared
// dependencies finish, so one record can compute its response spectrum
// while another is still band-pass filtering, overlapping compute-bound and
// I/O-bound work.
//
// Scheduling policy: among ready nodes the executor picks the node with the
// largest critical-path length (its weight plus the heaviest chain of
// dependents below it); ties break heaviest-node-first, then by insertion
// order.  Weights are caller-supplied cost estimates — the pipeline uses
// record data-point counts — so the policy degenerates to longest-first
// list scheduling on wide graphs, the classic makespan heuristic.
//
// Graphs are acyclic by construction: a node's dependencies must already be
// in the graph when it is added, so edges always point backwards in
// insertion order and no cycle check is needed at run time.
package dataflow

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"
)

// NodeID identifies one node of a Graph; IDs are dense and assigned in
// insertion order.
type NodeID int

// Spec describes one node to add to a Graph.
type Spec struct {
	// Label names the node in stats and error messages, e.g. "fourier:SS03".
	Label string
	// Weight is the node's estimated cost in arbitrary units (the pipeline
	// uses record data-point counts).  It feeds the critical-path priority
	// and the heaviest-first tie-breaker; non-positive weights are treated
	// as zero.
	Weight float64
	// Alpha is the node's contention coefficient on the simulated platform
	// (see internal/simsched); unused by the real executor.
	Alpha float64
	// Run executes the node's work.  A non-nil error marks the node failed:
	// its transitive dependents are skipped and the error is reported by
	// Execute.  Run must be safe to call from any goroutine.
	Run func() error
}

type node struct {
	id   NodeID
	spec Spec
	deps []NodeID
	// sdeps are stream dependencies: producers whose dispatch (not
	// completion) makes this node runnable, because the pair communicate
	// through an order-aware chunk stream instead of a materialized artifact.
	sdeps []NodeID
	// children and indegree describe the forward edges; pri is the
	// critical-path priority computed at execution time.
	children  []NodeID
	schildren []NodeID
	pri       float64
}

// Graph is a DAG of tasks under construction.  It is not safe for
// concurrent mutation; build it fully, then call Execute or ExecuteSim.
type Graph struct {
	nodes []*node
}

// New returns an empty graph.
func New() *Graph { return &Graph{} }

// Len returns the number of nodes added so far.
func (g *Graph) Len() int { return len(g.nodes) }

// Add appends a node depending on the given existing nodes and returns its
// ID.  It panics if a dependency has not been added yet — that ordering is
// what guarantees acyclicity by construction.
func (g *Graph) Add(spec Spec, deps ...NodeID) NodeID {
	id := NodeID(len(g.nodes))
	for _, d := range deps {
		if d < 0 || d >= id {
			panic(fmt.Sprintf("dataflow: node %q depends on %d, not yet in graph (next id %d)", spec.Label, d, id))
		}
	}
	if spec.Weight < 0 || math.IsNaN(spec.Weight) {
		// Negative and NaN weights would poison the priority sweep and, worse,
		// make readyHeap comparisons non-transitive (NaN != NaN), so the
		// dispatch order would depend on heap internals.  Clamp to zero: ties
		// then resolve on the stable NodeID order.
		spec.Weight = 0
	}
	n := &node{id: id, spec: spec, deps: append([]NodeID(nil), deps...)}
	g.nodes = append(g.nodes, n)
	return id
}

// AddStream appends a node like Add, with an extra set of stream
// dependencies: producers this node consumes through an order-aware chunk
// stream.  A stream edge is released when its producer is *dispatched* —
// popped by a worker — rather than when it completes, so the pair run
// concurrently with the stream's chunk budget as backpressure.  External
// schedulers that never report dispatch (the fleet pool, which drives the
// Tracker by Complete alone) degrade gracefully: Complete releases any
// still-held stream edges, restoring strictly ordered execution.
//
// Stream dependencies obey the same acyclicity-by-construction rule as
// ordinary dependencies and contribute to the producer's critical-path
// priority exactly like artifact edges.
func (g *Graph) AddStream(spec Spec, streamDeps []NodeID, deps ...NodeID) NodeID {
	id := g.Add(spec, deps...)
	for _, d := range streamDeps {
		if d < 0 || d >= id {
			panic(fmt.Sprintf("dataflow: node %q stream-depends on %d, not yet in graph (next id %d)", spec.Label, int(d), int(id)))
		}
	}
	g.nodes[id].sdeps = append([]NodeID(nil), streamDeps...)
	return id
}

// StreamDeps returns the stream-dependency IDs of id (for tests and
// introspection).
func (g *Graph) StreamDeps(id NodeID) []NodeID {
	return append([]NodeID(nil), g.nodes[id].sdeps...)
}

// Deps returns the dependency IDs of id (for tests and introspection).
func (g *Graph) Deps(id NodeID) []NodeID {
	return append([]NodeID(nil), g.nodes[id].deps...)
}

// Label returns the label of id.
func (g *Graph) Label(id NodeID) string { return g.nodes[id].spec.Label }

// prioritize computes every node's critical-path length: its own weight
// plus the heaviest chain of dependents below it.  Nodes are stored in
// topological order (edges point backwards), so one reverse sweep suffices.
func (g *Graph) prioritize() {
	for i := range g.nodes {
		g.nodes[i].children = g.nodes[i].children[:0]
		g.nodes[i].schildren = g.nodes[i].schildren[:0]
	}
	for _, n := range g.nodes {
		for _, d := range n.deps {
			g.nodes[d].children = append(g.nodes[d].children, n.id)
		}
		for _, d := range n.sdeps {
			g.nodes[d].schildren = append(g.nodes[d].schildren, n.id)
		}
	}
	for i := len(g.nodes) - 1; i >= 0; i-- {
		n := g.nodes[i]
		best := 0.0
		for _, c := range n.children {
			if p := g.nodes[c].pri; p > best {
				best = p
			}
		}
		for _, c := range n.schildren {
			if p := g.nodes[c].pri; p > best {
				best = p
			}
		}
		n.pri = n.spec.Weight + best
	}
}

// NodeStat reports one executed node: when it became ready (all deps done),
// when a worker started it, and when it finished — all offsets from the
// Execute call.  Skipped nodes (a dependency failed) report Start == End ==
// Ready with Worker == -1 and Skipped == true.
type NodeStat struct {
	ID      NodeID
	Label   string
	Ready   time.Duration
	Start   time.Duration
	End     time.Duration
	Worker  int
	Skipped bool
}

// Wait returns how long the node sat in the ready queue before a worker
// picked it up.
func (s NodeStat) Wait() time.Duration { return s.Start - s.Ready }

// Duration returns the node's execution time.
func (s NodeStat) Duration() time.Duration { return s.End - s.Start }

// Monitor receives per-worker busy/idle accounting, structurally matching
// parallel.Monitor so obs.WorkerMonitor plugs in directly.
type Monitor interface {
	WorkerSpan(worker int, busy, idle time.Duration, tasks int)
}

// WaitMonitor optionally extends Monitor with per-node ready-queue waits.
type WaitMonitor interface {
	TaskWait(d time.Duration)
}

// readyHeap orders ready nodes critical-path-first, then heaviest-first,
// then by insertion order — a max-heap on (pri, weight, -id).
type readyHeap []*node

func (h readyHeap) Len() int { return len(h) }
func (h readyHeap) Less(i, j int) bool {
	a, b := h[i], h[j]
	if a.pri != b.pri {
		return a.pri > b.pri
	}
	if a.spec.Weight != b.spec.Weight {
		return a.spec.Weight > b.spec.Weight
	}
	return a.id < b.id
}
func (h readyHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *readyHeap) Push(x any)   { *h = append(*h, x.(*node)) }
func (h *readyHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Execute runs the graph on a bounded pool of workers (values <= 0 select
// one worker per node) and returns per-node stats in node-ID order.
//
// Error semantics follow the parallel package: when a node's Run fails, its
// transitive dependents are skipped (their inputs never materialized) but
// independent branches keep running; the returned error is the failure of
// the smallest node ID, with real errors displacing cancellations so
// fail-fast graphs report the cause rather than the cancellation it
// triggered.
func (g *Graph) Execute(workers int, mon Monitor) ([]NodeStat, error) {
	n := len(g.nodes)
	if n == 0 {
		return nil, nil
	}
	tr := NewTracker(g)
	w := workers
	if w <= 0 || w > n {
		w = n
	}

	var (
		mu    sync.Mutex
		cond  = sync.NewCond(&mu)
		ready readyHeap
	)
	stats := make([]NodeStat, n)
	start := time.Now()
	for _, nd := range g.nodes {
		stats[nd.id] = NodeStat{ID: nd.id, Label: nd.spec.Label, Worker: -1}
	}
	for _, id := range tr.InitialReady() {
		heap.Push(&ready, g.nodes[id])
	}

	var wg sync.WaitGroup
	wg.Add(w)
	for t := 0; t < w; t++ {
		worker := t
		go func() {
			defer wg.Done()
			var busy time.Duration
			tasks := 0
			joined := time.Now()
			mu.Lock()
			for {
				for len(ready) == 0 && !tr.Done() {
					cond.Wait()
				}
				if len(ready) == 0 {
					break
				}
				nd := heap.Pop(&ready).(*node)
				now := time.Since(start)
				stats[nd.id].Start = now
				stats[nd.id].Worker = worker
				if wm, ok := mon.(WaitMonitor); ok && mon != nil {
					wm.TaskWait(now - stats[nd.id].Ready)
				}
				// Dispatch releases the node's outgoing stream edges: its
				// stream consumers become runnable now and overlap with it,
				// reading chunks as the producer emits them.
				if rd, sk := tr.Dispatched(nd.id); len(rd) > 0 || len(sk) > 0 {
					for _, s := range sk {
						stats[s].Ready = now
						stats[s].Start = now
						stats[s].End = now
						stats[s].Skipped = true
					}
					for _, r := range rd {
						stats[r].Ready = now
						heap.Push(&ready, g.nodes[r])
					}
					cond.Broadcast()
				}
				mu.Unlock()

				t0 := time.Now()
				err := nd.spec.Run()
				busy += time.Since(t0)
				tasks++

				mu.Lock()
				end := time.Since(start)
				stats[nd.id].End = end
				rd, sk := tr.Complete(nd.id, err)
				for _, s := range sk {
					// Skipped: resolved without dispatch, cascading already
					// handled inside the tracker.
					stats[s].Ready = end
					stats[s].Start = end
					stats[s].End = end
					stats[s].Skipped = true
				}
				for _, r := range rd {
					stats[r].Ready = end
					heap.Push(&ready, g.nodes[r])
				}
				cond.Broadcast()
			}
			mu.Unlock()
			if mon != nil {
				idle := time.Since(joined) - busy
				if idle < 0 {
					idle = 0
				}
				mon.WorkerSpan(worker, busy, idle, tasks)
			}
		}()
	}
	wg.Wait()
	return stats, tr.Err()
}

// better reports whether (err, id) should displace (cur, curID) as the
// reported failure: any error beats none, real errors beat cancellations,
// and among peers the smallest node ID wins — the same determinism contract
// as the parallel package's loops.
func better(err error, id NodeID, cur error, curID NodeID) bool {
	if cur == nil {
		return true
	}
	curCancel := errors.Is(cur, context.Canceled) || errors.Is(cur, context.DeadlineExceeded)
	newCancel := errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
	if curCancel != newCancel {
		return curCancel
	}
	return id < curID
}
