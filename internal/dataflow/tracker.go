package dataflow

// Tracker is the incremental ready-state machine behind Execute, exported so
// external schedulers — internal/fleet merges many events' graphs into one
// shared pool — can drive a Graph without owning the worker loop.  The
// Tracker answers one question after every node completion: which nodes
// became runnable, and which were resolved as skipped because an ancestor
// failed.  It carries the same error-selection contract as Execute (real
// errors displace cancellations, smallest NodeID wins).
//
// A Tracker is not safe for concurrent use; callers serialize Complete under
// their own scheduler lock.  The underlying Graph must not be mutated after
// NewTracker.
type Tracker struct {
	g      *Graph
	indeg  []int
	failed []bool // node failed or was transitively skipped
	done   int
	err    error
	errID  NodeID
}

// NewTracker prepares g for incremental execution: priorities are computed
// and per-node indegrees captured.
func NewTracker(g *Graph) *Tracker {
	g.prioritize()
	t := &Tracker{
		g:      g,
		indeg:  make([]int, len(g.nodes)),
		failed: make([]bool, len(g.nodes)),
		errID:  -1,
	}
	for _, nd := range g.nodes {
		t.indeg[nd.id] = len(nd.deps)
	}
	return t
}

// Len returns the number of nodes in the underlying graph.
func (t *Tracker) Len() int { return len(t.g.nodes) }

// InitialReady returns the nodes runnable before any completion — those with
// no dependencies — in ascending NodeID order.
func (t *Tracker) InitialReady() []NodeID {
	var ready []NodeID
	for _, nd := range t.g.nodes {
		if len(nd.deps) == 0 {
			ready = append(ready, nd.id)
		}
	}
	return ready
}

// Complete records that node id finished with err (nil = success) and
// returns the nodes that became runnable plus the nodes resolved as skipped
// — dependents of a failure whose last dependency just resolved.  Skipped
// nodes count as done without ever being returned as ready; the caller must
// not dispatch them.  The skip cascade is transitive, so one Complete call
// can skip an arbitrarily deep chain.
func (t *Tracker) Complete(id NodeID, err error) (ready, skipped []NodeID) {
	ready, skipped = t.complete(id, err, nil, nil)
	return ready, skipped
}

func (t *Tracker) complete(id NodeID, err error, ready, skipped []NodeID) ([]NodeID, []NodeID) {
	t.done++
	if err != nil {
		t.failed[id] = true
		if better(err, id, t.err, t.errID) {
			t.err, t.errID = err, id
		}
	}
	for _, c := range t.g.nodes[id].children {
		t.indeg[c]--
		if t.failed[id] && !t.failed[c] {
			t.failed[c] = true
		}
		if t.indeg[c] == 0 {
			if t.failed[c] {
				skipped = append(skipped, c)
				ready, skipped = t.complete(c, nil, ready, skipped)
			} else {
				ready = append(ready, c)
			}
		}
	}
	return ready, skipped
}

// Done reports whether every node has finished, failed, or been skipped.
func (t *Tracker) Done() bool { return t.done == len(t.g.nodes) }

// Err returns the tracked failure: the error of the smallest failed NodeID,
// with real errors displacing cancellations.  Nil while no node has failed.
func (t *Tracker) Err() error { return t.err }

// Priority returns id's critical-path priority (weight plus heaviest
// dependent chain), valid after NewTracker.
func (t *Tracker) Priority(id NodeID) float64 { return t.g.nodes[id].pri }

// Weight returns id's caller-supplied cost estimate.
func (t *Tracker) Weight(id NodeID) float64 { return t.g.nodes[id].spec.Weight }

// Alpha returns id's contention coefficient for the simulated platform.
func (t *Tracker) Alpha(id NodeID) float64 { return t.g.nodes[id].spec.Alpha }

// Label returns id's label.
func (t *Tracker) Label(id NodeID) string { return t.g.nodes[id].spec.Label }

// Run executes id's body.  Safe to call without the caller's scheduler lock;
// the body itself must tolerate running on any goroutine (same contract as
// Spec.Run).
func (t *Tracker) Run(id NodeID) error { return t.g.nodes[id].spec.Run() }
