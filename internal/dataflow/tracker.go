package dataflow

// Tracker is the incremental ready-state machine behind Execute, exported so
// external schedulers — internal/fleet merges many events' graphs into one
// shared pool — can drive a Graph without owning the worker loop.  The
// Tracker answers one question after every node completion: which nodes
// became runnable, and which were resolved as skipped because an ancestor
// failed.  It carries the same error-selection contract as Execute (real
// errors displace cancellations, smallest NodeID wins).
//
// A Tracker is not safe for concurrent use; callers serialize Complete under
// their own scheduler lock.  The underlying Graph must not be mutated after
// NewTracker.
type Tracker struct {
	g        *Graph
	indeg    []int
	failed   []bool // node failed or was transitively skipped
	released []bool // node's outgoing stream edges already released
	done     int
	err      error
	errID    NodeID
}

// NewTracker prepares g for incremental execution: priorities are computed
// and per-node indegrees captured.
func NewTracker(g *Graph) *Tracker {
	g.prioritize()
	t := &Tracker{
		g:        g,
		indeg:    make([]int, len(g.nodes)),
		failed:   make([]bool, len(g.nodes)),
		released: make([]bool, len(g.nodes)),
		errID:    -1,
	}
	for _, nd := range g.nodes {
		t.indeg[nd.id] = len(nd.deps) + len(nd.sdeps)
	}
	return t
}

// Len returns the number of nodes in the underlying graph.
func (t *Tracker) Len() int { return len(t.g.nodes) }

// InitialReady returns the nodes runnable before any completion — those with
// no dependencies — in ascending NodeID order.
func (t *Tracker) InitialReady() []NodeID {
	var ready []NodeID
	for _, nd := range t.g.nodes {
		if len(nd.deps) == 0 && len(nd.sdeps) == 0 {
			ready = append(ready, nd.id)
		}
	}
	return ready
}

// Dispatched records that a worker started running node id, releasing its
// outgoing stream edges: stream consumers whose last pending dependency was
// the producer's dispatch become runnable now and overlap with it.  Callers
// that never report dispatch (the fleet pool) simply skip this; Complete
// releases any still-held stream edges, degrading to ordered execution.
//
// A released consumer may still resolve as skipped when another of its
// ancestors already failed; such nodes are returned in skipped with the
// usual transitive cascade and must not be dispatched.
func (t *Tracker) Dispatched(id NodeID) (ready, skipped []NodeID) {
	if t.released[id] {
		return nil, nil
	}
	t.released[id] = true
	for _, c := range t.g.nodes[id].schildren {
		t.indeg[c]--
		if t.indeg[c] == 0 {
			if t.failed[c] {
				skipped = append(skipped, c)
				ready, skipped = t.complete(c, nil, ready, skipped)
			} else {
				ready = append(ready, c)
			}
		}
	}
	return ready, skipped
}

// Complete records that node id finished with err (nil = success) and
// returns the nodes that became runnable plus the nodes resolved as skipped
// — dependents of a failure whose last dependency just resolved.  Skipped
// nodes count as done without ever being returned as ready; the caller must
// not dispatch them.  The skip cascade is transitive, so one Complete call
// can skip an arbitrarily deep chain.
func (t *Tracker) Complete(id NodeID, err error) (ready, skipped []NodeID) {
	ready, skipped = t.complete(id, err, nil, nil)
	return ready, skipped
}

func (t *Tracker) complete(id NodeID, err error, ready, skipped []NodeID) ([]NodeID, []NodeID) {
	t.done++
	if err != nil {
		t.failed[id] = true
		if better(err, id, t.err, t.errID) {
			t.err, t.errID = err, id
		}
	}
	for _, c := range t.g.nodes[id].children {
		t.indeg[c]--
		if t.failed[id] && !t.failed[c] {
			t.failed[c] = true
		}
		if t.indeg[c] == 0 {
			if t.failed[c] {
				skipped = append(skipped, c)
				ready, skipped = t.complete(c, nil, ready, skipped)
			} else {
				ready = append(ready, c)
			}
		}
	}
	if !t.released[id] {
		// The node never dispatched (it was skipped, or an external scheduler
		// drives completions only): release its stream edges here, with the
		// same failure propagation as artifact edges — a consumer whose
		// producer never ran has no stream to read.  Edges already released
		// at dispatch skip this; their consumers observe a producer failure
		// through the stream itself.
		t.released[id] = true
		for _, c := range t.g.nodes[id].schildren {
			t.indeg[c]--
			if t.failed[id] && !t.failed[c] {
				t.failed[c] = true
			}
			if t.indeg[c] == 0 {
				if t.failed[c] {
					skipped = append(skipped, c)
					ready, skipped = t.complete(c, nil, ready, skipped)
				} else {
					ready = append(ready, c)
				}
			}
		}
	}
	return ready, skipped
}

// Done reports whether every node has finished, failed, or been skipped.
func (t *Tracker) Done() bool { return t.done == len(t.g.nodes) }

// Err returns the tracked failure: the error of the smallest failed NodeID,
// with real errors displacing cancellations.  Nil while no node has failed.
func (t *Tracker) Err() error { return t.err }

// Priority returns id's critical-path priority (weight plus heaviest
// dependent chain), valid after NewTracker.
func (t *Tracker) Priority(id NodeID) float64 { return t.g.nodes[id].pri }

// Weight returns id's caller-supplied cost estimate.
func (t *Tracker) Weight(id NodeID) float64 { return t.g.nodes[id].spec.Weight }

// Alpha returns id's contention coefficient for the simulated platform.
func (t *Tracker) Alpha(id NodeID) float64 { return t.g.nodes[id].spec.Alpha }

// Label returns id's label.
func (t *Tracker) Label(id NodeID) string { return t.g.nodes[id].spec.Label }

// Run executes id's body.  Safe to call without the caller's scheduler lock;
// the body itself must tolerate running on any goroutine (same contract as
// Spec.Run).
func (t *Tracker) Run(id NodeID) error { return t.g.nodes[id].spec.Run() }
