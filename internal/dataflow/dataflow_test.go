package dataflow

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func noop() error { return nil }

func TestExecuteRunsEveryNodeExactlyOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 4, 16} {
		t.Run(fmt.Sprintf("w=%d", workers), func(t *testing.T) {
			g := New()
			const n = 40
			counts := make([]atomic.Int32, n)
			ids := make([]NodeID, 0, n)
			for i := 0; i < n; i++ {
				i := i
				var deps []NodeID
				if i > 0 {
					deps = append(deps, ids[i/2]) // binary-tree-ish shape
				}
				ids = append(ids, g.Add(Spec{
					Label:  fmt.Sprintf("n%d", i),
					Weight: float64(n - i),
					Run:    func() error { counts[i].Add(1); return nil },
				}, deps...))
			}
			stats, err := g.Execute(workers, nil)
			if err != nil {
				t.Fatalf("Execute: %v", err)
			}
			if len(stats) != n {
				t.Fatalf("stats = %d, want %d", len(stats), n)
			}
			for i := range counts {
				if got := counts[i].Load(); got != 1 {
					t.Errorf("node %d ran %d times, want 1", i, got)
				}
			}
			for _, st := range stats {
				if st.Skipped {
					t.Errorf("node %d skipped in healthy run", st.ID)
				}
				if st.Worker < 0 {
					t.Errorf("node %d has no worker", st.ID)
				}
				if st.Start < st.Ready || st.End < st.Start {
					t.Errorf("node %d times out of order: ready=%v start=%v end=%v",
						st.ID, st.Ready, st.Start, st.End)
				}
			}
		})
	}
}

// TestExecuteRespectsDependencies asserts the core dataflow invariant: no
// node starts before every one of its dependencies has finished.
func TestExecuteRespectsDependencies(t *testing.T) {
	g := New()
	const n = 64
	finished := make([]atomic.Bool, n)
	var violation atomic.Int32
	ids := make([]NodeID, 0, n)
	rng := rand.New(rand.NewSource(42))
	deps := make([][]NodeID, n)
	for i := 0; i < n; i++ {
		i := i
		for _, d := range []int{rng.Intn(i + 1), rng.Intn(i + 1)} {
			if d < i {
				deps[i] = append(deps[i], ids[d])
			}
		}
		// Drawn up front: the shared rng must not be touched from node bodies.
		sleep := time.Duration(rng.Intn(50)) * time.Microsecond
		ids = append(ids, g.Add(Spec{
			Label:  fmt.Sprintf("n%d", i),
			Weight: rng.Float64() * 100,
			Run: func() error {
				for _, d := range deps[i] {
					if !finished[d].Load() {
						violation.Store(int32(i))
					}
				}
				time.Sleep(sleep)
				finished[i].Store(true)
				return nil
			},
		}, deps[i]...))
	}
	if _, err := g.Execute(8, nil); err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if v := violation.Load(); v != 0 {
		t.Fatalf("node %d started before a dependency finished", v)
	}
}

func TestAddPanicsOnUnknownDependency(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add accepted a forward dependency")
		}
	}()
	g := New()
	g.Add(Spec{Label: "a", Run: noop}, NodeID(3))
}

// TestSerialOrderIsCriticalPathFirst checks the scheduling policy on a
// two-chain graph: the heavy chain's nodes must all dispatch before the
// light chain even starts, because every node of the heavy chain has a
// larger critical path than the light chain's head.
func TestSerialOrderIsCriticalPathFirst(t *testing.T) {
	g := New()
	// Heavy chain: 3 nodes of weight 10 (critical paths 30, 20, 10).
	h0 := g.Add(Spec{Label: "h0", Weight: 10, Run: noop})
	h1 := g.Add(Spec{Label: "h1", Weight: 10, Run: noop}, h0)
	h2 := g.Add(Spec{Label: "h2", Weight: 10, Run: noop}, h1)
	// Light chain: 2 nodes of weight 3 (critical paths 6, 3).
	l0 := g.Add(Spec{Label: "l0", Weight: 3, Run: noop})
	l1 := g.Add(Spec{Label: "l1", Weight: 3, Run: noop}, l0)

	got := g.Order()
	want := []NodeID{h0, h1, h2, l0, l1}
	if len(got) != len(want) {
		t.Fatalf("order = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v (critical-path-first)", got, want)
		}
	}
}

// TestTieBreakHeaviestFirst: equal critical paths dispatch heaviest node
// first, then by insertion order.
func TestTieBreakHeaviestFirst(t *testing.T) {
	g := New()
	a := g.Add(Spec{Label: "a", Weight: 5, Run: noop})
	b := g.Add(Spec{Label: "b", Weight: 9, Run: noop})
	c := g.Add(Spec{Label: "c", Weight: 9, Run: noop})
	_ = a
	got := g.Order()
	want := []NodeID{b, c, a}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestExecuteSkipsTransitiveDependentsOnFailure(t *testing.T) {
	g := New()
	boom := errors.New("boom")
	var ran sync.Map
	mk := func(label string, err error, deps ...NodeID) NodeID {
		return g.Add(Spec{Label: label, Weight: 1, Run: func() error {
			ran.Store(label, true)
			return err
		}}, deps...)
	}
	a := mk("a", boom)
	b := mk("b", nil, a)
	c := mk("c", nil, b)
	d := mk("d", nil) // independent branch keeps running
	e := mk("e", nil, d)

	stats, err := g.Execute(2, nil)
	if !errors.Is(err, boom) {
		t.Fatalf("error = %v, want boom", err)
	}
	for _, id := range []NodeID{b, c} {
		if _, ok := ran.Load(g.Label(id)); ok {
			t.Errorf("dependent %q ran after failure", g.Label(id))
		}
		if !stats[id].Skipped {
			t.Errorf("node %q not marked skipped", g.Label(id))
		}
	}
	for _, id := range []NodeID{d, e} {
		if _, ok := ran.Load(g.Label(id)); !ok {
			t.Errorf("independent node %q did not run", g.Label(id))
		}
		if stats[id].Skipped {
			t.Errorf("independent node %q marked skipped", g.Label(id))
		}
	}
}

func TestExecuteReportsSmallestFailingNode(t *testing.T) {
	g := New()
	errA := errors.New("first")
	errB := errors.New("second")
	g.Add(Spec{Label: "a", Run: func() error { return errA }})
	g.Add(Spec{Label: "b", Run: func() error { return errB }})
	_, err := g.Execute(1, nil)
	if !errors.Is(err, errA) {
		t.Fatalf("error = %v, want the smallest node's failure", err)
	}
}

func TestExecuteRealErrorDisplacesCancellation(t *testing.T) {
	g := New()
	boom := errors.New("boom")
	// The cancellation has the smaller node ID, but the real error must win.
	g.Add(Spec{Label: "cancelled", Run: func() error { return context.Canceled }})
	g.Add(Spec{Label: "real", Run: func() error { return boom }})
	_, err := g.Execute(1, nil)
	if !errors.Is(err, boom) {
		t.Fatalf("error = %v, want the real error over the cancellation", err)
	}
}

type recordingMonitor struct {
	mu    sync.Mutex
	spans int
	tasks int
	waits int
}

func (m *recordingMonitor) WorkerSpan(worker int, busy, idle time.Duration, tasks int) {
	m.mu.Lock()
	m.spans++
	m.tasks += tasks
	m.mu.Unlock()
}

func (m *recordingMonitor) TaskWait(d time.Duration) {
	m.mu.Lock()
	m.waits++
	m.mu.Unlock()
}

func TestExecuteReportsWorkerSpansAndWaits(t *testing.T) {
	g := New()
	const n, workers = 12, 3
	for i := 0; i < n; i++ {
		g.Add(Spec{Label: fmt.Sprintf("n%d", i), Run: func() error {
			time.Sleep(100 * time.Microsecond)
			return nil
		}})
	}
	mon := &recordingMonitor{}
	if _, err := g.Execute(workers, mon); err != nil {
		t.Fatal(err)
	}
	if mon.spans != workers {
		t.Errorf("worker spans = %d, want %d", mon.spans, workers)
	}
	if mon.tasks != n {
		t.Errorf("tasks = %d, want %d", mon.tasks, n)
	}
	if mon.waits != n {
		t.Errorf("task waits = %d, want %d", mon.waits, n)
	}
}

func TestExecuteEmptyGraph(t *testing.T) {
	stats, err := New().Execute(4, nil)
	if err != nil || stats != nil {
		t.Fatalf("empty graph: stats=%v err=%v", stats, err)
	}
}

func TestSimMakespanChainAndFanOut(t *testing.T) {
	ms := time.Millisecond
	// Chain: serial regardless of workers.
	g := New()
	a := g.Add(Spec{Label: "a", Weight: 1, Run: noop})
	g.Add(Spec{Label: "b", Weight: 1, Run: noop}, a)
	if got := g.SimMakespan([]time.Duration{3 * ms, 4 * ms}, 4); got != 7*ms {
		t.Errorf("chain makespan = %v, want 7ms", got)
	}
	// Fan-out, alpha 0: perfect overlap on 2 workers.
	g2 := New()
	g2.Add(Spec{Label: "a", Weight: 1, Run: noop})
	g2.Add(Spec{Label: "b", Weight: 1, Run: noop})
	if got := g2.SimMakespan([]time.Duration{3 * ms, 4 * ms}, 2); got != 4*ms {
		t.Errorf("fan-out makespan = %v, want 4ms", got)
	}
	// Fan-out with contention: each node slowed by 1 + 0.5*(2-1) = 1.5.
	g3 := New()
	g3.Add(Spec{Label: "a", Weight: 1, Alpha: 0.5, Run: noop})
	g3.Add(Spec{Label: "b", Weight: 1, Alpha: 0.5, Run: noop})
	if got := g3.SimMakespan([]time.Duration{4 * ms, 4 * ms}, 2); got != 6*ms {
		t.Errorf("contended makespan = %v, want 6ms", got)
	}
	// One worker: serial sum, no contention.
	if got := g3.SimMakespan([]time.Duration{4 * ms, 4 * ms}, 1); got != 8*ms {
		t.Errorf("serial makespan = %v, want 8ms", got)
	}
}

// TestSimMakespanNeverBelowCriticalPath sanity-checks the scheduler against
// the two trivial lower bounds on random DAGs: the critical path and the
// total work divided by the worker count (alpha 0 so no contention).
func TestSimMakespanNeverBelowCriticalPath(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		g := New()
		const n = 30
		durs := make([]time.Duration, n)
		ids := make([]NodeID, 0, n)
		for i := 0; i < n; i++ {
			var deps []NodeID
			for d := 0; d < i; d++ {
				if rng.Intn(8) == 0 {
					deps = append(deps, ids[d])
				}
			}
			durs[i] = time.Duration(rng.Intn(1000)+1) * time.Microsecond
			ids = append(ids, g.Add(Spec{Label: fmt.Sprintf("n%d", i), Weight: float64(durs[i])}, deps...))
		}
		for _, w := range []int{1, 2, 4, 8} {
			got := g.SimMakespan(durs, w)
			if got < Sum(durs)/time.Duration(w) {
				t.Errorf("trial %d w=%d: makespan %v below work bound %v", trial, w, got, Sum(durs)/time.Duration(w))
			}
			if got > Sum(durs) {
				t.Errorf("trial %d w=%d: makespan %v above serial sum %v", trial, w, got, Sum(durs))
			}
		}
	}
}

// Sum is a test helper mirroring simsched.Sum.
func Sum(durs []time.Duration) time.Duration {
	var s time.Duration
	for _, d := range durs {
		s += d
	}
	return s
}

// TestExecuteSoak is the race-detector workout: many concurrent executions
// of random DAGs with random failures, checking the once-and-ordered
// invariants every time.
func TestExecuteSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak skipped in -short")
	}
	var outer sync.WaitGroup
	for round := 0; round < 8; round++ {
		round := round
		outer.Add(1)
		go func() {
			defer outer.Done()
			rng := rand.New(rand.NewSource(int64(round)))
			g := New()
			const n = 120
			boom := errors.New("boom")
			counts := make([]atomic.Int32, n)
			finished := make([]atomic.Bool, n)
			deps := make([][]NodeID, n)
			ids := make([]NodeID, 0, n)
			fail := make([]bool, n)
			for i := 0; i < n; i++ {
				i := i
				for d := 0; d < 3; d++ {
					if p := rng.Intn(i + 1); p < i {
						deps[i] = append(deps[i], ids[p])
					}
				}
				fail[i] = rng.Intn(30) == 0
				ids = append(ids, g.Add(Spec{
					Label:  fmt.Sprintf("r%d-n%d", round, i),
					Weight: rng.Float64() * 1000,
					Run: func() error {
						counts[i].Add(1)
						for _, d := range deps[i] {
							if !finished[d].Load() {
								return fmt.Errorf("node %d ran before dep %d", i, d)
							}
						}
						if fail[i] {
							return boom
						}
						finished[i].Store(true)
						return nil
					},
				}, deps[i]...))
			}
			stats, err := g.Execute(1+rng.Intn(8), nil)
			anyFail := false
			for i := range fail {
				if fail[i] {
					anyFail = true
				}
			}
			if anyFail && err == nil {
				t.Errorf("round %d: failures injected but no error returned", round)
			}
			if err != nil && !errors.Is(err, boom) {
				t.Errorf("round %d: %v", round, err)
			}
			for i := range counts {
				c := counts[i].Load()
				if stats[i].Skipped && c != 0 {
					t.Errorf("round %d: skipped node %d ran", round, i)
				}
				if !stats[i].Skipped && c != 1 {
					t.Errorf("round %d: node %d ran %d times", round, i, c)
				}
			}
		}()
	}
	outer.Wait()
}
