package dataflow

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// TestStreamEdgeReleasesAtDispatch pins the defining property of a stream
// edge: the consumer becomes runnable when the producer is dispatched, not
// when it completes, so the two overlap in time.
func TestStreamEdgeReleasesAtDispatch(t *testing.T) {
	g := New()
	rendezvous := make(chan struct{})
	producer := g.Add(Spec{Label: "producer", Run: func() error {
		// Block until the consumer is also running: only possible if the
		// stream edge released at dispatch.
		select {
		case rendezvous <- struct{}{}:
			return nil
		case <-time.After(5 * time.Second):
			return errors.New("consumer never started while producer was running")
		}
	}})
	g.AddStream(Spec{Label: "consumer", Run: func() error {
		select {
		case <-rendezvous:
			return nil
		case <-time.After(5 * time.Second):
			return errors.New("producer never handed off")
		}
	}}, []NodeID{producer})

	if _, err := g.Execute(2, nil); err != nil {
		t.Fatal(err)
	}
}

// TestStreamEdgeCompleteOnlyFallback drives the Tracker by Complete alone
// (the fleet pool's mode): stream consumers must still become runnable, just
// in strict order.
func TestStreamEdgeCompleteOnlyFallback(t *testing.T) {
	g := New()
	p := g.Add(Spec{Label: "p", Run: func() error { return nil }})
	c := g.AddStream(Spec{Label: "c", Run: func() error { return nil }}, []NodeID{p})

	tr := NewTracker(g)
	init := tr.InitialReady()
	if len(init) != 1 || init[0] != p {
		t.Fatalf("initial ready %v", init)
	}
	ready, skipped := tr.Complete(p, nil)
	if len(skipped) != 0 || len(ready) != 1 || ready[0] != c {
		t.Fatalf("after complete-only producer: ready=%v skipped=%v", ready, skipped)
	}
	if rd, sk := tr.Complete(c, nil); len(rd) != 0 || len(sk) != 0 {
		t.Fatalf("after consumer: ready=%v skipped=%v", rd, sk)
	}
	if !tr.Done() || tr.Err() != nil {
		t.Fatalf("done=%v err=%v", tr.Done(), tr.Err())
	}
}

// TestStreamEdgeNoDoubleRelease: dispatching then completing the producer
// must decrement the consumer's indegree exactly once.
func TestStreamEdgeNoDoubleRelease(t *testing.T) {
	g := New()
	p := g.Add(Spec{Label: "p", Run: func() error { return nil }})
	gate := g.Add(Spec{Label: "gate", Run: func() error { return nil }})
	c := g.AddStream(Spec{Label: "c", Run: func() error { return nil }}, []NodeID{p}, gate)

	tr := NewTracker(g)
	ready, _ := tr.Dispatched(p)
	if len(ready) != 0 {
		t.Fatalf("consumer ready before its artifact dep: %v", ready)
	}
	// Completing the producer must NOT release the stream edge again; the
	// consumer still waits on gate.
	ready, _ = tr.Complete(p, nil)
	if len(ready) != 0 {
		t.Fatalf("double release: %v", ready)
	}
	ready, _ = tr.Complete(gate, nil)
	if len(ready) != 1 || ready[0] != c {
		t.Fatalf("after gate: %v", ready)
	}
}

// TestStreamEdgeSkipCascade: a failed producer must skip its stream
// consumers (and their dependents) when the edge releases at completion.
func TestStreamEdgeSkipCascade(t *testing.T) {
	g := New()
	boom := errors.New("boom")
	p := g.Add(Spec{Label: "p", Run: func() error { return boom }})
	c := g.AddStream(Spec{Label: "c", Run: func() error { return nil }}, []NodeID{p})
	d := g.Add(Spec{Label: "d", Run: func() error { return nil }}, c)

	tr := NewTracker(g)
	ready, skipped := tr.Complete(p, boom)
	if len(ready) != 0 {
		t.Fatalf("ready after failure: %v", ready)
	}
	if len(skipped) != 2 || skipped[0] != c || skipped[1] != d {
		t.Fatalf("skip cascade %v, want [%d %d]", skipped, c, d)
	}
	if !tr.Done() || !errors.Is(tr.Err(), boom) {
		t.Fatalf("done=%v err=%v", tr.Done(), tr.Err())
	}
}

// TestStreamEdgeDispatchedProducerFailure: when the edge released at
// dispatch and the producer later fails, the consumer has already been
// handed the failure through the stream itself — the tracker must not skip
// it, and the run's error must still surface.
func TestStreamEdgeDispatchedProducerFailure(t *testing.T) {
	g := New()
	boom := errors.New("boom")
	p := g.Add(Spec{Label: "p", Run: func() error { return boom }})
	c := g.AddStream(Spec{Label: "c", Run: func() error { return nil }}, []NodeID{p})

	tr := NewTracker(g)
	ready, skipped := tr.Dispatched(p)
	if len(skipped) != 0 || len(ready) != 1 || ready[0] != c {
		t.Fatalf("dispatch release: ready=%v skipped=%v", ready, skipped)
	}
	ready, skipped = tr.Complete(p, boom)
	if len(ready) != 0 || len(skipped) != 0 {
		t.Fatalf("post-failure: ready=%v skipped=%v", ready, skipped)
	}
	if _, sk := tr.Complete(c, nil); len(sk) != 0 {
		t.Fatalf("consumer completion skipped %v", sk)
	}
	if !tr.Done() || !errors.Is(tr.Err(), boom) {
		t.Fatalf("done=%v err=%v", tr.Done(), tr.Err())
	}
}

// TestStreamEdgesOrderedInSerialPlans: Order and SimMakespan treat stream
// edges as ordered, so a consumer never precedes its producer in the serial
// plan and the simulated makespan charges the producer's finish.
func TestStreamEdgesOrderedInSerialPlans(t *testing.T) {
	g := New()
	p := g.Add(Spec{Label: "p", Weight: 1, Run: func() error { return nil }})
	c := g.AddStream(Spec{Label: "c", Weight: 1, Run: func() error { return nil }}, []NodeID{p})
	other := g.Add(Spec{Label: "other", Weight: 10, Run: func() error { return nil }})

	order := g.Order()
	pos := map[NodeID]int{}
	for i, id := range order {
		pos[id] = i
	}
	if pos[c] < pos[p] {
		t.Fatalf("consumer before producer in serial order %v", order)
	}
	durs := []time.Duration{time.Second, time.Second, time.Second}
	if got := g.SimMakespan(durs, 1); got != 3*time.Second {
		t.Fatalf("1-worker makespan %v, want 3s", got)
	}
	// On 2+ workers the p→c chain (2s) and other (1s) overlap: 2s.
	if got := g.SimMakespan(durs, 3); got != 2*time.Second {
		t.Fatalf("3-worker makespan %v, want 2s", got)
	}
	_ = other
}

// TestStreamEdgePriorityContribution: a stream consumer's critical path
// flows through its producer, so a heavy streamed chain outranks light
// independent work.
func TestStreamEdgePriorityContribution(t *testing.T) {
	g := New()
	var mu sync.Mutex
	var started []string
	mk := func(label string) func() error {
		return func() error {
			mu.Lock()
			started = append(started, label)
			mu.Unlock()
			return nil
		}
	}
	light := g.Add(Spec{Label: "light", Weight: 1, Run: mk("light")})
	heavyP := g.Add(Spec{Label: "heavyP", Weight: 1, Run: mk("heavyP")})
	g.AddStream(Spec{Label: "heavyC", Weight: 100, Run: mk("heavyC")}, []NodeID{heavyP})

	if _, err := g.Execute(1, nil); err != nil {
		t.Fatal(err)
	}
	// Single worker: heavyP (pri 101) must start before light (pri 1).
	if started[0] != "heavyP" {
		t.Fatalf("dispatch order %v, want heavyP first", started)
	}
	_ = light
}
