package artifact

import (
	"crypto/sha256"
	"encoding/hex"
	"path/filepath"
	"testing"

	"accelproc/internal/storage"
)

// seedCache opens a cache at root, stores two actions (one sharing a blob
// with the other), and returns the root ready for corruption.
func seedCache(t *testing.T, fsys CacheFS, root string) {
	t.Helper()
	c, err := NewActionCache(fsys, root, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put(testID("scrub-a"), []Blob{
		{Name: "a.v2", Data: []byte("component a")},
		{Name: "shared.f", Data: []byte("fourier shared")},
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.Put(testID("scrub-b"), []Blob{
		{Name: "b.v2", Data: []byte("component b")},
		{Name: "shared.f", Data: []byte("fourier shared")},
	}); err != nil {
		t.Fatal(err)
	}
}

func TestScrubCleanCacheFindsNothing(t *testing.T) {
	cacheBackends(t, func(t *testing.T, fsys CacheFS, root string) {
		seedCache(t, fsys, root)
		rep, err := Scrub(fsys, root)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Clean() {
			t.Fatalf("clean cache scrubbed dirty: %+v", rep)
		}
		if rep.ActionsScanned != 2 || rep.ActionsKept != 2 || rep.BlobsScanned != 3 {
			t.Fatalf("scan counts wrong: %+v", rep)
		}
		if rep.BytesReclaimed != 0 {
			t.Fatalf("clean scrub reclaimed %d bytes", rep.BytesReclaimed)
		}
	})
}

func TestScrubRepairsSeededDamage(t *testing.T) {
	cacheBackends(t, func(t *testing.T, fsys CacheFS, root string) {
		seedCache(t, fsys, root)
		actions, blobs := filepath.Join(root, "actions"), filepath.Join(root, "blobs")

		// Orphan blob: content-addressed but referenced by no manifest.
		orphan := []byte("orphaned output")
		osum := sha256.Sum256(orphan)
		if err := fsys.WriteFile(filepath.Join(blobs, hex.EncodeToString(osum[:])), orphan, 0o644); err != nil {
			t.Fatal(err)
		}
		// Truncated manifest: a crash mid-write cut the entry list short.
		full, err := fsys.ReadFile(filepath.Join(actions, testID("scrub-a").String()))
		if err != nil {
			t.Fatal(err)
		}
		if err := fsys.WriteFile(filepath.Join(actions, testID("scrub-a").String()), full[:len(full)/2], 0o644); err != nil {
			t.Fatal(err)
		}
		// Bad digest: flip bytes inside a referenced blob.
		bsum := sha256.Sum256([]byte("component b"))
		if err := fsys.WriteFile(filepath.Join(blobs, hex.EncodeToString(bsum[:])), []byte("bit rotted!"), 0o644); err != nil {
			t.Fatal(err)
		}
		// Stray temp file in the actions dir.
		if err := fsys.WriteFile(filepath.Join(actions, "leftover.tmp"), []byte("junk"), 0o644); err != nil {
			t.Fatal(err)
		}

		rep, err := Scrub(fsys, root)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Clean() {
			t.Fatal("seeded damage reported clean")
		}
		// scrub-a's manifest is truncated; scrub-b's blob is rotted, so its
		// manifest goes too, leaving zero actions and (after orphan GC) zero
		// blobs: "a.v2"'s and "shared.f"'s blobs lose their last reference.
		if rep.TruncatedManifests != 1 || rep.BadDigests != 1 || rep.MissingBlobs != 1 || rep.StrayFiles != 1 {
			t.Fatalf("damage counts wrong: %+v", rep)
		}
		if rep.ActionsKept != 0 || rep.OrphanBlobs != 3 {
			t.Fatalf("kept/orphan counts wrong: %+v", rep)
		}
		if rep.BytesReclaimed == 0 {
			t.Fatalf("no bytes reclaimed: %+v", rep)
		}

		// The scrubbed root is fully repaired: a second pass finds nothing,
		// and the cache reopens with nothing left to sweep.
		rep2, err := Scrub(fsys, root)
		if err != nil {
			t.Fatal(err)
		}
		if !rep2.Clean() {
			t.Fatalf("second scrub still dirty: %+v", rep2)
		}
		c, err := NewActionCache(fsys, root, 0, false)
		if err != nil {
			t.Fatal(err)
		}
		if c.Len() != 0 || c.SweptOrphans() != 0 {
			t.Fatalf("reopen after scrub: len=%d swept=%d", c.Len(), c.SweptOrphans())
		}
	})
}

func TestScrubKeepsSoundEntriesRestorable(t *testing.T) {
	cacheBackends(t, func(t *testing.T, fsys CacheFS, root string) {
		seedCache(t, fsys, root)
		// Corrupt only scrub-b's private blob; scrub-a must survive intact.
		bsum := sha256.Sum256([]byte("component b"))
		if err := fsys.WriteFile(filepath.Join(root, "blobs", hex.EncodeToString(bsum[:])), []byte("bit rotted!"), 0o644); err != nil {
			t.Fatal(err)
		}
		rep, err := Scrub(fsys, root)
		if err != nil {
			t.Fatal(err)
		}
		if rep.ActionsKept != 1 || rep.BadDigests != 1 || rep.MissingBlobs != 1 {
			t.Fatalf("partial damage handled wrong: %+v", rep)
		}
		// The shared blob stays: scrub-a still references it.
		if rep.OrphanBlobs != 0 {
			t.Fatalf("shared blob GC'd while referenced: %+v", rep)
		}
		c, err := NewActionCache(fsys, root, 0, false)
		if err != nil {
			t.Fatal(err)
		}
		got, ok := restoreAll(t, c, testID("scrub-a"))
		if !ok || got["a.v2"] != "component a" || got["shared.f"] != "fourier shared" {
			t.Fatalf("surviving entry unrestorable: ok=%v got=%v", ok, got)
		}
		if _, ok := restoreAll(t, c, testID("scrub-b")); ok {
			t.Fatal("damaged entry still restorable after scrub")
		}
	})
}

func TestLoadSweepCountsOrphans(t *testing.T) {
	cacheBackends(t, func(t *testing.T, fsys CacheFS, root string) {
		seedCache(t, fsys, root)
		for i := 0; i < 3; i++ {
			data := []byte{byte(i), 'o', 'r', 'p', 'h', 'a', 'n'}
			sum := sha256.Sum256(data)
			if err := fsys.WriteFile(filepath.Join(root, "blobs", hex.EncodeToString(sum[:])), data, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		c, err := NewActionCache(fsys, root, 0, false)
		if err != nil {
			t.Fatal(err)
		}
		if c.SweptOrphans() != 3 {
			t.Fatalf("SweptOrphans = %d, want 3", c.SweptOrphans())
		}
		rep, err := Scrub(fsys, root)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Clean() {
			t.Fatalf("post-sweep scrub dirty: %+v", rep)
		}
	})
}

func TestLoadSweepIsBounded(t *testing.T) {
	fsys := storage.OS{}
	root := filepath.Join(t.TempDir(), ".smcache")
	if _, err := NewActionCache(fsys, root, 0, false); err != nil {
		t.Fatal(err)
	}
	extra := 5
	for i := 0; i < autoSweepLimit+extra; i++ {
		data := []byte{byte(i), byte(i >> 8), 'x'}
		sum := sha256.Sum256(data)
		if err := fsys.WriteFile(filepath.Join(root, "blobs", hex.EncodeToString(sum[:])), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	c, err := NewActionCache(fsys, root, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if c.SweptOrphans() != autoSweepLimit {
		t.Fatalf("first open swept %d, want the %d bound", c.SweptOrphans(), autoSweepLimit)
	}
	c2, err := NewActionCache(fsys, root, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if c2.SweptOrphans() != int64(extra) {
		t.Fatalf("second open swept %d, want the remaining %d", c2.SweptOrphans(), extra)
	}
}

// FuzzActionManifest feeds hostile bytes to the manifest parser: any input
// must either parse to a self-consistent output list or be rejected — never
// panic, never return a malformed entry the restore path would trip over.
func FuzzActionManifest(f *testing.F) {
	f.Add([]byte(actionManifestMagic + "\nNOUTPUTS: 0\n"))
	f.Add(formatManifest([]manifestOut{
		{name: "a.v2", size: 11, sum: sha256.Sum256([]byte("component a"))},
	}))
	f.Add([]byte(actionManifestMagic + "\nNOUTPUTS: 2\n1 ff a\n"))
	f.Add([]byte("SMCACHE ACTION v9\nNOUTPUTS: 0\n"))
	f.Add([]byte("\x00\xff\xfe"))
	f.Add([]byte(actionManifestMagic + "\nNOUTPUTS: -1\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		outs, ok := parseManifest(data)
		if !ok {
			return
		}
		for _, out := range outs {
			if out.name == "" || out.size < 0 {
				t.Fatalf("accepted malformed output %+v", out)
			}
		}
		// A parsed manifest must round-trip: format and reparse agree.
		outs2, ok2 := parseManifest(formatManifest(outs))
		if !ok2 || len(outs2) != len(outs) {
			t.Fatalf("round trip lost outputs: %d -> %d (ok=%v)", len(outs), len(outs2), ok2)
		}
	})
}
