package artifact

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"

	"accelproc/internal/obs"
	"accelproc/internal/storage"
)

// cacheBackends runs a subtest against both Workspace implementations the
// action cache persists through.
func cacheBackends(t *testing.T, fn func(t *testing.T, fsys CacheFS, root string)) {
	t.Helper()
	t.Run("fs", func(t *testing.T) {
		fn(t, storage.OS{}, filepath.Join(t.TempDir(), ".smcache"))
	})
	t.Run("mem", func(t *testing.T) {
		fn(t, storage.NewMem(), filepath.Join(t.TempDir(), ".smcache"))
	})
}

func testID(s string) ActionID {
	h := NewHasher("test/v1")
	h.String(s)
	return h.Sum()
}

// restoreAll collects a Restore's outputs into a map.
func restoreAll(t *testing.T, c *ActionCache, id ActionID) (map[string]string, bool) {
	t.Helper()
	got := map[string]string{}
	ok, err := c.Restore(id, func(name string, data []byte) error {
		got[name] = string(data)
		return nil
	})
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	return got, ok
}

func TestActionCacheRoundTrip(t *testing.T) {
	cacheBackends(t, func(t *testing.T, fsys CacheFS, root string) {
		c, err := NewActionCache(fsys, root, 0, false)
		if err != nil {
			t.Fatal(err)
		}
		id := testID("round-trip")
		if _, ok := restoreAll(t, c, id); ok {
			t.Fatal("hit on empty cache")
		}
		outs := []Blob{
			{Name: "a.v2", Data: []byte("component a")},
			{Name: "@side", Data: []byte("side channel")},
		}
		if err := c.Put(id, outs); err != nil {
			t.Fatal(err)
		}
		got, ok := restoreAll(t, c, id)
		if !ok {
			t.Fatal("miss after Put")
		}
		if got["a.v2"] != "component a" || got["@side"] != "side channel" {
			t.Fatalf("restored %v", got)
		}
		hits, misses, evicts := c.Counts()
		if hits != 1 || misses != 1 || evicts != 0 {
			t.Fatalf("counts = %d/%d/%d, want 1/1/0", hits, misses, evicts)
		}
	})
}

func TestActionCachePersistsAcrossOpens(t *testing.T) {
	cacheBackends(t, func(t *testing.T, fsys CacheFS, root string) {
		c, err := NewActionCache(fsys, root, 0, false)
		if err != nil {
			t.Fatal(err)
		}
		id := testID("across-opens")
		if err := c.Put(id, []Blob{{Name: "x", Data: []byte("payload")}}); err != nil {
			t.Fatal(err)
		}
		// A second cache over the same root — a process restart — must index
		// the persisted entry.
		c2, err := NewActionCache(fsys, root, 0, false)
		if err != nil {
			t.Fatal(err)
		}
		if c2.Len() != 1 {
			t.Fatalf("reopened Len = %d, want 1", c2.Len())
		}
		if got, ok := restoreAll(t, c2, id); !ok || got["x"] != "payload" {
			t.Fatalf("reopened restore: ok=%v got=%v", ok, got)
		}
	})
}

func TestActionCacheTruncatedBlobIsMiss(t *testing.T) {
	cacheBackends(t, func(t *testing.T, fsys CacheFS, root string) {
		c, err := NewActionCache(fsys, root, 0, false)
		if err != nil {
			t.Fatal(err)
		}
		id := testID("truncated")
		if err := c.Put(id, []Blob{{Name: "x", Data: []byte("full payload")}}); err != nil {
			t.Fatal(err)
		}
		// Truncate the blob behind the cache's back: damage, not an error.
		blobs, err := fsys.List(filepath.Join(root, "blobs"))
		if err != nil || len(blobs) != 1 {
			t.Fatalf("blobs: %v %v", blobs, err)
		}
		p := filepath.Join(root, "blobs", blobs[0].Name())
		if err := fsys.WriteFile(p, []byte("full"), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, ok := restoreAll(t, c, id); ok {
			t.Fatal("truncated blob restored as a hit")
		}
		if c.Len() != 0 {
			t.Fatalf("damaged entry not dropped, Len = %d", c.Len())
		}
		// The id is re-cacheable afterwards.
		if err := c.Put(id, []Blob{{Name: "x", Data: []byte("full payload")}}); err != nil {
			t.Fatal(err)
		}
		if got, ok := restoreAll(t, c, id); !ok || got["x"] != "full payload" {
			t.Fatalf("re-put restore: ok=%v got=%v", ok, got)
		}
	})
}

func TestActionCacheVerifyCatchesSameSizeCorruption(t *testing.T) {
	cacheBackends(t, func(t *testing.T, fsys CacheFS, root string) {
		corrupt := func(c *ActionCache, id ActionID) {
			t.Helper()
			if err := c.Put(id, []Blob{{Name: "x", Data: []byte("aaaaaaaa")}}); err != nil {
				t.Fatal(err)
			}
			blobs, err := fsys.List(filepath.Join(root, "blobs"))
			if err != nil || len(blobs) != 1 {
				t.Fatalf("blobs: %v %v", blobs, err)
			}
			p := filepath.Join(root, "blobs", blobs[0].Name())
			if err := fsys.WriteFile(p, []byte("bbbbbbbb"), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		// Without verify the size check passes and the corrupt bytes flow
		// through — the documented tradeoff.
		c, err := NewActionCache(fsys, root, 0, false)
		if err != nil {
			t.Fatal(err)
		}
		corrupt(c, testID("same-size"))
		if got, ok := restoreAll(t, c, testID("same-size")); !ok || got["x"] != "bbbbbbbb" {
			t.Fatalf("unverified restore: ok=%v got=%v", ok, got)
		}
		// With verify the checksum mismatch is a miss that drops the entry.
		root2 := filepath.Join(t.TempDir(), ".smcache")
		cv, err := NewActionCache(fsys, root2, 0, true)
		if err != nil {
			t.Fatal(err)
		}
		root = root2
		corrupt(cv, testID("same-size"))
		if _, ok := restoreAll(t, cv, testID("same-size")); ok {
			t.Fatal("verify restored same-size corruption")
		}
		if cv.Len() != 0 {
			t.Fatalf("corrupt entry not dropped, Len = %d", cv.Len())
		}
	})
}

func TestActionCacheLRUEviction(t *testing.T) {
	cacheBackends(t, func(t *testing.T, fsys CacheFS, root string) {
		// Each entry holds one 8-byte blob; a 20-byte bound fits two.
		c, err := NewActionCache(fsys, root, 20, false)
		if err != nil {
			t.Fatal(err)
		}
		o := obs.New()
		evCtr := o.Counter("evictions")
		c.SetCounters(o.Counter("h"), o.Counter("m"), evCtr, o.Gauge("b"))
		for i := 0; i < 3; i++ {
			id := testID(fmt.Sprintf("entry-%d", i))
			data := []byte(fmt.Sprintf("payload%d", i))
			if err := c.Put(id, []Blob{{Name: "x", Data: data}}); err != nil {
				t.Fatal(err)
			}
		}
		if c.Len() != 2 || c.Bytes() != 16 {
			t.Fatalf("after 3 puts: Len=%d Bytes=%d, want 2/16", c.Len(), c.Bytes())
		}
		if _, ok := restoreAll(t, c, testID("entry-0")); ok {
			t.Fatal("least-recently-used entry survived eviction")
		}
		if _, ok := restoreAll(t, c, testID("entry-2")); !ok {
			t.Fatal("most recent entry evicted")
		}
		if _, _, ev := c.Counts(); ev != 1 {
			t.Fatalf("evictions = %d, want 1", ev)
		}
		if got := evCtr.Value(); got != 1 {
			t.Fatalf("eviction counter = %v, want 1", got)
		}
	})
}

func TestActionCacheRestoreFreshensLRU(t *testing.T) {
	cacheBackends(t, func(t *testing.T, fsys CacheFS, root string) {
		c, err := NewActionCache(fsys, root, 20, false)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 2; i++ {
			id := testID(fmt.Sprintf("entry-%d", i))
			if err := c.Put(id, []Blob{{Name: "x", Data: []byte(fmt.Sprintf("payload%d", i))}}); err != nil {
				t.Fatal(err)
			}
		}
		// Touch entry-0 so entry-1 becomes the eviction victim.
		if _, ok := restoreAll(t, c, testID("entry-0")); !ok {
			t.Fatal("entry-0 missing")
		}
		if err := c.Put(testID("entry-2"), []Blob{{Name: "x", Data: []byte("payload2")}}); err != nil {
			t.Fatal(err)
		}
		if _, ok := restoreAll(t, c, testID("entry-0")); !ok {
			t.Fatal("freshened entry evicted")
		}
		if _, ok := restoreAll(t, c, testID("entry-1")); ok {
			t.Fatal("stale entry survived")
		}
	})
}

func TestActionCacheCorruptManifestDroppedOnLoad(t *testing.T) {
	cacheBackends(t, func(t *testing.T, fsys CacheFS, root string) {
		c, err := NewActionCache(fsys, root, 0, false)
		if err != nil {
			t.Fatal(err)
		}
		good := testID("good")
		if err := c.Put(good, []Blob{{Name: "x", Data: []byte("keep me")}}); err != nil {
			t.Fatal(err)
		}
		// A garbage manifest under a well-formed name, plus a stray file.
		bad := testID("bad")
		if err := fsys.WriteFile(filepath.Join(root, "actions", bad.String()), []byte("not a manifest"), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := fsys.WriteFile(filepath.Join(root, "actions", "stray.tmp"), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
		c2, err := NewActionCache(fsys, root, 0, false)
		if err != nil {
			t.Fatal(err)
		}
		if c2.Len() != 1 {
			t.Fatalf("reopened Len = %d, want 1", c2.Len())
		}
		if got, ok := restoreAll(t, c2, good); !ok || got["x"] != "keep me" {
			t.Fatalf("good entry: ok=%v got=%v", ok, got)
		}
		if entries, err := fsys.List(filepath.Join(root, "actions")); err != nil || len(entries) != 1 {
			t.Fatalf("corrupt manifests not removed: %v %v", entries, err)
		}
	})
}

func TestActionCacheOrphanBlobSweptOnLoad(t *testing.T) {
	cacheBackends(t, func(t *testing.T, fsys CacheFS, root string) {
		c, err := NewActionCache(fsys, root, 0, false)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Put(testID("live"), []Blob{{Name: "x", Data: []byte("live blob")}}); err != nil {
			t.Fatal(err)
		}
		// An orphan blob, as left by a crash between blob and manifest writes.
		orphan := testID("orphan")
		if err := fsys.WriteFile(filepath.Join(root, "blobs", orphan.String()), []byte("dead"), 0o644); err != nil {
			t.Fatal(err)
		}
		c2, err := NewActionCache(fsys, root, 0, false)
		if err != nil {
			t.Fatal(err)
		}
		if c2.Bytes() != int64(len("live blob")) {
			t.Fatalf("Bytes = %d, want %d", c2.Bytes(), len("live blob"))
		}
		if blobs, err := fsys.List(filepath.Join(root, "blobs")); err != nil || len(blobs) != 1 {
			t.Fatalf("orphan blob not swept: %v %v", blobs, err)
		}
	})
}

func TestActionCacheSharedBlobRefcount(t *testing.T) {
	cacheBackends(t, func(t *testing.T, fsys CacheFS, root string) {
		// Two bounded entries sharing one blob: bytes are charged once, and
		// evicting one entry must not strand or delete the shared content.
		c, err := NewActionCache(fsys, root, 0, false)
		if err != nil {
			t.Fatal(err)
		}
		shared := []byte("shared content")
		if err := c.Put(testID("one"), []Blob{{Name: "x", Data: shared}}); err != nil {
			t.Fatal(err)
		}
		if err := c.Put(testID("two"), []Blob{{Name: "y", Data: shared}}); err != nil {
			t.Fatal(err)
		}
		if c.Bytes() != int64(len(shared)) {
			t.Fatalf("shared blob double-charged: Bytes = %d, want %d", c.Bytes(), len(shared))
		}
		c.dropEntry(testID("one"))
		if got, ok := restoreAll(t, c, testID("two")); !ok || got["y"] != string(shared) {
			t.Fatalf("surviving entry lost shared blob: ok=%v got=%v", ok, got)
		}
		c.dropEntry(testID("two"))
		if c.Bytes() != 0 {
			t.Fatalf("Bytes = %d after dropping all entries", c.Bytes())
		}
	})
}

func TestActionCacheNilSafe(t *testing.T) {
	var c *ActionCache
	if ok, err := c.Restore(testID("x"), nil); ok || err != nil {
		t.Fatal("nil cache restored")
	}
	if err := c.Put(testID("x"), nil); err != nil {
		t.Fatal(err)
	}
	c.SetCounters(nil, nil, nil, nil)
	if h, m, e := c.Counts(); h != 0 || m != 0 || e != 0 {
		t.Fatal("nil cache has counts")
	}
	if c.Bytes() != 0 || c.Len() != 0 {
		t.Fatal("nil cache has contents")
	}
}

func TestActionCacheConcurrent(t *testing.T) {
	cacheBackends(t, func(t *testing.T, fsys CacheFS, root string) {
		c, err := NewActionCache(fsys, root, 1<<10, false)
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < 50; i++ {
					id := testID(fmt.Sprintf("c-%d", (w+i)%16))
					if i%2 == 0 {
						_ = c.Put(id, []Blob{{Name: "x", Data: []byte(fmt.Sprintf("data-%d", i))}})
					} else {
						_, _ = c.Restore(id, func(string, []byte) error { return nil })
					}
				}
			}(w)
		}
		wg.Wait()
	})
}

func TestHasherFieldBoundaries(t *testing.T) {
	a := NewHasher("s")
	a.String("ab")
	a.String("c")
	b := NewHasher("s")
	b.String("a")
	b.String("bc")
	if a.Sum() == b.Sum() {
		t.Fatal("field concatenation aliased two keys")
	}
	s1 := NewHasher("scheme-1")
	s2 := NewHasher("scheme-2")
	s1.String("x")
	s2.String("x")
	if s1.Sum() == s2.Sum() {
		t.Fatal("scheme not folded into the digest")
	}
}
