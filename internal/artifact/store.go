// Package artifact implements a concurrency-safe, content-addressed,
// write-through store of decoded pipeline artifacts.
//
// The processing chain exchanges every intermediate product through text
// files: a producer formats []float64 payloads with 17-digit precision and
// the consumer tokenizes and ParseFloats them right back.  The store layers
// memoization over that protocol without changing it: writers keep emitting
// byte-identical files, but the decoded in-memory value is retained, keyed
// by path and by the file's content generation (size + mtime as observed
// right after the write).  A reader that finds a live entry skips the
// tokenize+parse entirely; any path whose on-disk generation no longer
// matches — an external mutation, a fault-injected partial write, a retry
// overwrite — falls back to disk.
//
// Entries follow artifacts across rename boundaries (the temp-folder
// staging protocol moves files between the work directory and per-record
// scratch folders) and across hardlinks (Clone), because a rename or link
// preserves the inode and therefore the generation.  A nil *Store is valid
// everywhere and caches nothing, which is how the -no-artifact-cache
// ablation runs.
//
// The generation function is pluggable (NewStoreWith), so the store works
// against any storage backend: the default stats the real filesystem
// (size + mtime), while the in-memory workspace supplies its own monotonic
// write-sequence tokens — making the same store the fs backend's
// accelerator and the mem backend's native coherence check.
package artifact

import (
	"os"
	"strings"
	"sync"

	"accelproc/internal/obs"
)

// entry is one cached decoded value plus the content generation of the file
// it was decoded from (or encoded to).
type entry struct {
	value any
	gen   any
	size  int64
}

// Store maps file paths to decoded artifact values.  All methods are safe
// for concurrent use and are no-ops on a nil receiver.
type Store struct {
	mu      sync.RWMutex
	entries map[string]entry
	gen     func(path string) (gen any, size int64, ok bool)

	// Nil-safe observability counters (see obs.Counter); zero-valued until
	// SetCounters attaches real ones.
	hits   *obs.Counter
	misses *obs.Counter
	saved  *obs.Counter
}

// NewStore returns an empty store using the filesystem generation (stat
// size + mtime).
func NewStore() *Store {
	return NewStoreWith(nil)
}

// NewStoreWith returns an empty store whose content generations come from
// gen; nil selects the filesystem default.  gen must return a comparable
// token identifying the path's current content, its size in bytes, and
// ok=false when the path does not currently hold a regular file.
func NewStoreWith(gen func(path string) (any, int64, bool)) *Store {
	if gen == nil {
		gen = statGeneration
	}
	return &Store{entries: make(map[string]entry), gen: gen}
}

// statGen is the filesystem generation token: size + mtime as observed by
// os.Stat.
type statGen struct {
	size      int64
	mtimeNano int64
}

// statGeneration is the default generation function.
func statGeneration(path string) (any, int64, bool) {
	info, err := os.Stat(path)
	if err != nil || info.IsDir() {
		return nil, 0, false
	}
	return statGen{size: info.Size(), mtimeNano: info.ModTime().UnixNano()}, info.Size(), true
}

// SetCounters attaches the cache metrics: hits, misses, and the on-disk
// bytes whose re-read+re-parse each hit avoided.
func (s *Store) SetCounters(hits, misses, saved *obs.Counter) {
	if s == nil {
		return
	}
	s.hits, s.misses, s.saved = hits, misses, saved
}

// Put records value as the decoded form of path's current content.  It must
// be called after the file has been successfully written (or read): the
// generation function captures the content token, and a failed lookup drops
// any existing entry instead of storing an unverifiable one.
func (s *Store) Put(path string, value any) {
	if s == nil {
		return
	}
	g, size, ok := s.gen(path)
	if !ok {
		s.Invalidate(path)
		return
	}
	s.mu.Lock()
	s.entries[path] = entry{value: value, gen: g, size: size}
	s.mu.Unlock()
}

// Get returns the cached decoded value for path if the file's current
// generation still matches the one recorded at Put time.  A mismatch (or a
// vanished file) invalidates the entry and reports a miss, so a mutation
// behind the store's back is never served stale.
func (s *Store) Get(path string) (any, bool) {
	if s == nil {
		return nil, false
	}
	s.mu.RLock()
	e, ok := s.entries[path]
	s.mu.RUnlock()
	if !ok {
		s.misses.Add(1)
		return nil, false
	}
	g, _, live := s.gen(path)
	if !live || g != e.gen {
		s.Invalidate(path)
		s.misses.Add(1)
		return nil, false
	}
	s.hits.Add(1)
	s.saved.Add(float64(e.size))
	return e.value, true
}

// Cached is the typed read path: the entry for path, if live and of type T.
func Cached[T any](s *Store, path string) (T, bool) {
	v, ok := s.Get(path)
	if ok {
		if t, tok := v.(T); tok {
			return t, true
		}
	}
	var zero T
	return zero, false
}

// Invalidate drops the entry for path, if any: called when a write failed
// (a fault-injected or partial write leaves unknown bytes on disk) and when
// a file is removed.
func (s *Store) Invalidate(path string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	delete(s.entries, path)
	s.mu.Unlock()
}

// InvalidateDir drops every entry at or under dir: called when a scratch
// folder is deleted or moved wholesale into quarantine.
func (s *Store) InvalidateDir(dir string) {
	if s == nil {
		return
	}
	prefix := strings.TrimSuffix(dir, string(os.PathSeparator)) + string(os.PathSeparator)
	s.mu.Lock()
	for p := range s.entries {
		if p == dir || strings.HasPrefix(p, prefix) {
			delete(s.entries, p)
		}
	}
	s.mu.Unlock()
}

// Rename moves the entry for oldpath to newpath, following a successful
// file rename.  A rename preserves the inode, so the recorded generation
// stays valid for the new path.
func (s *Store) Rename(oldpath, newpath string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if e, ok := s.entries[oldpath]; ok {
		delete(s.entries, oldpath)
		s.entries[newpath] = e
	} else {
		delete(s.entries, newpath)
	}
	s.mu.Unlock()
}

// Clone copies src's entry to dst, following a successful hardlink: both
// names now share the inode, so they share the generation too.  Without a
// src entry any stale dst entry is dropped.
func (s *Store) Clone(src, dst string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if e, ok := s.entries[src]; ok {
		s.entries[dst] = e
	} else {
		delete(s.entries, dst)
	}
	s.mu.Unlock()
}

// Len reports the number of live entries (for tests and introspection).
func (s *Store) Len() int {
	if s == nil {
		return 0
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.entries)
}
