// Package artifact implements the pipeline's two caching layers.
//
// The memo layer (Store, this file) is a concurrency-safe, write-through
// store of decoded pipeline artifacts, alive for one process.  The
// processing chain exchanges every intermediate product through text files:
// a producer formats []float64 payloads with 17-digit precision and the
// consumer tokenizes and ParseFloats them right back.  The store layers
// memoization over that protocol without changing it: writers keep emitting
// byte-identical files, but the decoded in-memory value is retained, keyed
// by path and by the file's content generation (size + content hash as
// observed right after the write).  A reader that finds a live entry skips
// the tokenize+parse entirely; any path whose on-disk generation no longer
// matches — an external mutation, a fault-injected partial write, a retry
// overwrite — falls back to disk.
//
// Entries follow artifacts across rename boundaries (the temp-folder
// staging protocol moves files between the work directory and per-record
// scratch folders) and across hardlinks (Clone), because a rename or link
// preserves the content and therefore the generation.  A nil *Store is
// valid everywhere and caches nothing, which is how the cache-off ablation
// runs.
//
// The generation function is pluggable (NewMemo), so the store works
// against any storage backend: the default reads and hashes the real
// filesystem, while the in-memory workspace supplies its own monotonic
// write-sequence tokens — making the same store the fs backend's
// accelerator and the mem backend's native coherence check.
//
// The action-cache layer (ActionCache, action.go) persists whole stage
// executions content-addressed across process restarts; see that file.
package artifact

import (
	"crypto/sha256"
	"os"
	"strings"
	"sync"
	"sync/atomic"

	"accelproc/internal/obs"
)

// entry is one cached decoded value plus the content generation of the file
// it was decoded from (or encoded to).
type entry struct {
	value any
	gen   any
	size  int64
}

// Store maps file paths to decoded artifact values.  All methods are safe
// for concurrent use and are no-ops on a nil receiver.
type Store struct {
	mu      sync.RWMutex
	entries map[string]entry
	gen     func(path string) (gen any, size int64, ok bool)

	// Lifetime hit/miss totals, always tracked (Counts), independent of the
	// optional observer counters below.
	nHits, nMisses atomic.Int64

	// Nil-safe observability counters (see obs.Counter); zero-valued until
	// SetCounters attaches real ones.
	hits   *obs.Counter
	misses *obs.Counter
	saved  *obs.Counter
}

// NewMemo returns an empty memo-layer store whose content generations come
// from gen; nil selects the filesystem default.  gen must return a
// comparable token identifying the path's current content, its size in
// bytes, and ok=false when the path does not currently hold a regular file.
func NewMemo(gen func(path string) (any, int64, bool)) *Store {
	if gen == nil {
		gen = statGeneration
	}
	return &Store{entries: make(map[string]entry), gen: gen}
}

// NewStore returns an empty store using the filesystem generation.
//
// Deprecated: use NewMemo(nil); kept for the pre-CacheConfig API.
func NewStore() *Store {
	return NewMemo(nil)
}

// NewStoreWith returns an empty store using the given generation function.
//
// Deprecated: use NewMemo; kept for the pre-CacheConfig API.
func NewStoreWith(gen func(path string) (any, int64, bool)) *Store {
	return NewMemo(gen)
}

// statGen is the filesystem generation token: size plus content hash.  The
// hash — not mtime — carries the coherence: filesystem mtime granularity can
// alias two same-size rewrites landing within one clock tick, which a
// size+mtime token would serve stale.
type statGen struct {
	size int64
	sum  [sha256.Size]byte
}

// statGeneration is the default generation function.
func statGeneration(path string) (any, int64, bool) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, false
	}
	return statGen{size: int64(len(data)), sum: sha256.Sum256(data)}, int64(len(data)), true
}

// SetCounters attaches the cache metrics: hits, misses, and the on-disk
// bytes whose re-read+re-parse each hit avoided.
func (s *Store) SetCounters(hits, misses, saved *obs.Counter) {
	if s == nil {
		return
	}
	s.hits, s.misses, s.saved = hits, misses, saved
}

// Put records value as the decoded form of path's current content.  It must
// be called after the file has been successfully written (or read): the
// generation function captures the content token, and a failed lookup drops
// any existing entry instead of storing an unverifiable one.
func (s *Store) Put(path string, value any) {
	if s == nil {
		return
	}
	g, size, ok := s.gen(path)
	if !ok {
		s.Invalidate(path)
		return
	}
	s.mu.Lock()
	s.entries[path] = entry{value: value, gen: g, size: size}
	s.mu.Unlock()
}

// Get returns the cached decoded value for path if the file's current
// generation still matches the one recorded at Put time.  A mismatch (or a
// vanished file) invalidates the entry and reports a miss, so a mutation
// behind the store's back is never served stale.
func (s *Store) Get(path string) (any, bool) {
	if s == nil {
		return nil, false
	}
	s.mu.RLock()
	e, ok := s.entries[path]
	s.mu.RUnlock()
	if !ok {
		s.nMisses.Add(1)
		s.misses.Add(1)
		return nil, false
	}
	g, _, live := s.gen(path)
	if !live || g != e.gen {
		s.Invalidate(path)
		s.nMisses.Add(1)
		s.misses.Add(1)
		return nil, false
	}
	s.nHits.Add(1)
	s.hits.Add(1)
	s.saved.Add(float64(e.size))
	return e.value, true
}

// Counts reports the lifetime hit and miss totals.
func (s *Store) Counts() (hits, misses int64) {
	if s == nil {
		return 0, 0
	}
	return s.nHits.Load(), s.nMisses.Load()
}

// Cached is the typed read path: the entry for path, if live and of type T.
func Cached[T any](s *Store, path string) (T, bool) {
	v, ok := s.Get(path)
	if ok {
		if t, tok := v.(T); tok {
			return t, true
		}
	}
	var zero T
	return zero, false
}

// Invalidate drops the entry for path, if any: called when a write failed
// (a fault-injected or partial write leaves unknown bytes on disk) and when
// a file is removed.
func (s *Store) Invalidate(path string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	delete(s.entries, path)
	s.mu.Unlock()
}

// InvalidateDir drops every entry at or under dir: called when a scratch
// folder is deleted or moved wholesale into quarantine.
func (s *Store) InvalidateDir(dir string) {
	if s == nil {
		return
	}
	prefix := strings.TrimSuffix(dir, string(os.PathSeparator)) + string(os.PathSeparator)
	s.mu.Lock()
	for p := range s.entries {
		if p == dir || strings.HasPrefix(p, prefix) {
			delete(s.entries, p)
		}
	}
	s.mu.Unlock()
}

// Rename moves the entry for oldpath to newpath, following a successful
// file rename.  A rename preserves the inode, so the recorded generation
// stays valid for the new path.
func (s *Store) Rename(oldpath, newpath string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if e, ok := s.entries[oldpath]; ok {
		delete(s.entries, oldpath)
		s.entries[newpath] = e
	} else {
		delete(s.entries, newpath)
	}
	s.mu.Unlock()
}

// Clone copies src's entry to dst, following a successful hardlink: both
// names now share the inode, so they share the generation too.  Without a
// src entry any stale dst entry is dropped.
func (s *Store) Clone(src, dst string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if e, ok := s.entries[src]; ok {
		s.entries[dst] = e
	} else {
		delete(s.entries, dst)
	}
	s.mu.Unlock()
}

// Len reports the number of live entries (for tests and introspection).
func (s *Store) Len() int {
	if s == nil {
		return 0
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.entries)
}
