package artifact

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"accelproc/internal/faults"
	"accelproc/internal/obs"
)

// This file is the action-cache layer: where the memo layer (store.go)
// remembers decoded values for the lifetime of one process, the action cache
// remembers the *outputs* of whole stage executions across processes and
// across storage backends.  The design follows the build-action scheme of
// cmd/go: an action is identified by a digest of everything that determines
// its outputs — a stable scheme string, the stage identity, the content
// hashes of its input artifacts, and the option parameters the stage's
// kernels read — and its output files are stored content-addressed under a
// cache root.  Rerunning a stage whose digest is already present restores
// the recorded bytes instead of recomputing them.

// ActionID is the digest identifying one cached action.
type ActionID [sha256.Size]byte

// String returns the lowercase hex form, used as the manifest file name.
func (id ActionID) String() string { return hex.EncodeToString(id[:]) }

func parseActionID(s string) (ActionID, bool) {
	var id ActionID
	if len(s) != 2*sha256.Size {
		return id, false
	}
	b, err := hex.DecodeString(s)
	if err != nil {
		return id, false
	}
	copy(id[:], b)
	return id, true
}

// Hasher accumulates the fields of an action key into a digest.  Every field
// is length-prefixed before hashing, so ("ab","c") and ("a","bc") produce
// different digests — no field concatenation can alias another key.
type Hasher struct {
	h hash.Hash
}

// NewHasher starts a digest under the given scheme string.  The scheme names
// the key layout version: bump it whenever the set or order of hashed fields
// changes, so stale cache entries from older binaries can never alias.
func NewHasher(scheme string) *Hasher {
	h := &Hasher{h: sha256.New()}
	h.String(scheme)
	return h
}

// Bytes folds a raw byte field into the digest.
func (h *Hasher) Bytes(b []byte) {
	var n [8]byte
	binary.LittleEndian.PutUint64(n[:], uint64(len(b)))
	h.h.Write(n[:])
	h.h.Write(b)
}

// String folds a string field into the digest.
func (h *Hasher) String(s string) { h.Bytes([]byte(s)) }

// Int folds an integer field into the digest.
func (h *Hasher) Int(v int64) {
	var n [8]byte
	binary.LittleEndian.PutUint64(n[:], uint64(v))
	h.Bytes(n[:])
}

// Float folds a float field into the digest, via the shortest exact decimal
// form so the key is bit-pattern stable.
func (h *Hasher) Float(v float64) { h.String(strconv.FormatFloat(v, 'e', -1, 64)) }

// Sum returns the accumulated digest.
func (h *Hasher) Sum() ActionID {
	var id ActionID
	h.h.Sum(id[:0])
	return id
}

// CacheFS is the filesystem surface the action cache persists through: the
// subset of storage.Workspace it needs, declared locally so this package
// stays importable from internal/storage-free contexts.  storage.Workspace
// satisfies it structurally.
type CacheFS interface {
	MkdirAll(path string, perm os.FileMode) error
	ReadFile(path string) ([]byte, error)
	WriteFile(path string, data []byte, perm os.FileMode) error
	Remove(path string) error
	Stat(path string) (fs.FileInfo, error)
	List(dir string) ([]fs.DirEntry, error)
}

// Blob is one output file of an action: its name relative to the work
// directory (or a "@"-prefixed side-channel name the caller interprets) and
// its exact bytes.
type Blob struct {
	Name string
	Data []byte
}

// manifestOut is one output line of a persisted action manifest.
type manifestOut struct {
	name string
	size int64
	sum  [sha256.Size]byte
}

// actionEntry is one resident cache entry.
type actionEntry struct {
	id   ActionID
	outs []manifestOut
}

// blobInfo tracks one content-addressed blob's size and how many manifests
// reference it, so shared outputs are stored and counted once.
type blobInfo struct {
	size int64
	refs int
}

// actionManifestMagic heads every manifest file; a manifest without it (or
// with any malformed line) is treated as corrupt and dropped, never as an
// error — a damaged cache degrades to recomputation.
const actionManifestMagic = "SMCACHE ACTION v1"

// ActionCache is the persistent, size-bounded, content-addressed action
// store.  Layout under root:
//
//	root/actions/<hex action id>   one text manifest per cached action
//	root/blobs/<hex sha256>        output bytes, content-addressed
//
// Entries are evicted least-recently-used when the summed blob bytes exceed
// the configured bound.  Every read path treats damage — missing blob,
// truncated blob, checksum mismatch under verify, unparseable manifest — as
// a miss that drops the entry, never as an error.  All methods are safe for
// concurrent use and are no-ops on a nil receiver.
type ActionCache struct {
	fsys   CacheFS
	root   string
	max    int64 // blob-byte bound; <= 0 means unbounded
	verify bool  // re-hash blob bytes on every restore

	mu      sync.Mutex
	entries map[ActionID]*list.Element
	lru     *list.List // of *actionEntry; front = least recently used
	blobs   map[[sha256.Size]byte]*blobInfo
	bytes   int64

	nHits, nMisses, nEvicts int64
	nSwept                  int64 // orphan blobs removed by load's bounded sweep

	// Nil-safe observability handles, attached via SetCounters.
	hits, misses, evicts *obs.Counter
	bytesGauge           *obs.Gauge
}

// NewActionCache opens (or creates) the action cache rooted at root on fsys.
// maxBytes bounds the summed blob bytes (<= 0 is unbounded); verify re-hashes
// every restored blob against its recorded checksum.  Existing entries are
// indexed with their LRU order seeded from manifest modification times;
// corrupt manifests and orphaned blobs are removed.
func NewActionCache(fsys CacheFS, root string, maxBytes int64, verify bool) (*ActionCache, error) {
	c := &ActionCache{
		fsys:    fsys,
		root:    root,
		max:     maxBytes,
		verify:  verify,
		entries: make(map[ActionID]*list.Element),
		lru:     list.New(),
		blobs:   make(map[[sha256.Size]byte]*blobInfo),
	}
	if err := fsys.MkdirAll(c.actionsDir(), 0o755); err != nil {
		return nil, fmt.Errorf("artifact: action cache %s: %w", root, err)
	}
	if err := fsys.MkdirAll(c.blobsDir(), 0o755); err != nil {
		return nil, fmt.Errorf("artifact: action cache %s: %w", root, err)
	}
	if err := c.load(); err != nil {
		return nil, fmt.Errorf("artifact: action cache %s: %w", root, err)
	}
	return c, nil
}

func (c *ActionCache) actionsDir() string { return filepath.Join(c.root, "actions") }
func (c *ActionCache) blobsDir() string   { return filepath.Join(c.root, "blobs") }

func (c *ActionCache) blobPath(sum [sha256.Size]byte) string {
	return filepath.Join(c.blobsDir(), hex.EncodeToString(sum[:]))
}

func (c *ActionCache) manifestPath(id ActionID) string {
	return filepath.Join(c.actionsDir(), id.String())
}

// load indexes the persisted cache: parse every manifest (removing corrupt
// ones), seed the LRU from manifest mtimes, account blob bytes once per
// unique checksum, drop orphaned blobs, and enforce the size bound.
func (c *ActionCache) load() error {
	names, err := c.fsys.List(c.actionsDir())
	if err != nil {
		return err
	}
	type loaded struct {
		e  *actionEntry
		at time.Time
	}
	var found []loaded
	for _, de := range names {
		if de.IsDir() {
			continue
		}
		id, ok := parseActionID(de.Name())
		if !ok {
			// Stray file (an interrupted temp write, say): not ours to keep.
			_ = c.fsys.Remove(filepath.Join(c.actionsDir(), de.Name()))
			continue
		}
		path := c.manifestPath(id)
		data, err := c.fsys.ReadFile(path)
		if err != nil {
			continue
		}
		outs, ok := parseManifest(data)
		if !ok {
			_ = c.fsys.Remove(path)
			continue
		}
		at := time.Time{}
		if info, err := c.fsys.Stat(path); err == nil {
			at = info.ModTime()
		}
		found = append(found, loaded{e: &actionEntry{id: id, outs: outs}, at: at})
	}
	sort.Slice(found, func(i, j int) bool { return found[i].at.Before(found[j].at) })
	for _, l := range found {
		c.entries[l.e.id] = c.lru.PushBack(l.e)
		for _, out := range l.e.outs {
			c.refBlob(out.sum, out.size)
		}
	}
	// Remove blobs no surviving manifest references.  The sweep is bounded
	// per open so a massively damaged cache cannot stall startup; whatever
	// remains is picked up by the next open or by an explicit Scrub.
	if blobNames, err := c.fsys.List(c.blobsDir()); err == nil {
		for _, de := range blobNames {
			if de.IsDir() {
				continue
			}
			sum, ok := parseActionID(de.Name())
			if ok {
				if _, live := c.blobs[[sha256.Size]byte(sum)]; live {
					continue
				}
			}
			if c.nSwept >= autoSweepLimit {
				break
			}
			if c.fsys.Remove(filepath.Join(c.blobsDir(), de.Name())) == nil {
				c.nSwept++
			}
		}
	}
	c.evictLocked()
	c.bytesGauge.Set(float64(c.bytes))
	return nil
}

// autoSweepLimit bounds how many orphan blobs one load may delete.
const autoSweepLimit = 512

// SweptOrphans reports how many orphan blobs the opening sweep removed.
func (c *ActionCache) SweptOrphans() int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.nSwept
}

// refBlob adds one manifest reference to a blob, charging its bytes on the
// first reference.  Callers hold c.mu (or run during single-threaded load).
func (c *ActionCache) refBlob(sum [sha256.Size]byte, size int64) {
	if b, ok := c.blobs[sum]; ok {
		b.refs++
		return
	}
	c.blobs[sum] = &blobInfo{size: size, refs: 1}
	c.bytes += size
}

// unrefBlob drops one reference, deleting the blob file and refunding its
// bytes when the last reference goes.  Callers hold c.mu.
func (c *ActionCache) unrefBlob(sum [sha256.Size]byte) {
	b, ok := c.blobs[sum]
	if !ok {
		return
	}
	b.refs--
	if b.refs > 0 {
		return
	}
	delete(c.blobs, sum)
	c.bytes -= b.size
	_ = c.fsys.Remove(c.blobPath(sum))
}

func formatManifest(outs []manifestOut) []byte {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\nNOUTPUTS: %d\n", actionManifestMagic, len(outs))
	for _, out := range outs {
		fmt.Fprintf(&sb, "%d %s %s\n", out.size, hex.EncodeToString(out.sum[:]), out.name)
	}
	return []byte(sb.String())
}

func parseManifest(data []byte) ([]manifestOut, bool) {
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) < 2 || lines[0] != actionManifestMagic {
		return nil, false
	}
	nStr, ok := strings.CutPrefix(lines[1], "NOUTPUTS: ")
	if !ok {
		return nil, false
	}
	n, err := strconv.Atoi(nStr)
	if err != nil || n < 0 || len(lines) != 2+n {
		return nil, false
	}
	outs := make([]manifestOut, n)
	for i := 0; i < n; i++ {
		fields := strings.SplitN(lines[2+i], " ", 3)
		if len(fields) != 3 || fields[2] == "" {
			return nil, false
		}
		size, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil || size < 0 {
			return nil, false
		}
		sum, ok := parseActionID(fields[1])
		if !ok {
			return nil, false
		}
		outs[i] = manifestOut{name: fields[2], size: size, sum: [sha256.Size]byte(sum)}
	}
	return outs, true
}

// SetCounters attaches the cache metrics: restore hits, misses (including
// corruption drops), size-bound evictions, and the resident blob bytes.
func (c *ActionCache) SetCounters(hits, misses, evicts *obs.Counter, bytes *obs.Gauge) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.hits, c.misses, c.evicts, c.bytesGauge = hits, misses, evicts, bytes
	bytes.Set(float64(c.bytes))
	c.mu.Unlock()
}

func (c *ActionCache) hit()  { c.nHits++; c.hits.Add(1) }
func (c *ActionCache) miss() { c.nMisses++; c.misses.Add(1) }

// Restore looks up id and, on a hit, feeds every recorded output through
// write in manifest order.  It returns (false, nil) on a miss; any damaged
// entry — blob unreadable, size short of the manifest (a truncated blob),
// or, under verify, a checksum mismatch — is dropped and reported as a miss,
// so cache corruption can only cost recomputation.  An error from write is
// returned as-is: by then the entry itself proved sound, and the caller's
// workspace failed.
func (c *ActionCache) Restore(id ActionID, write func(name string, data []byte) error) (bool, error) {
	if c == nil {
		return false, nil
	}
	c.mu.Lock()
	el, ok := c.entries[id]
	if !ok {
		c.miss()
		c.mu.Unlock()
		return false, nil
	}
	e := el.Value.(*actionEntry)
	c.lru.MoveToBack(el)
	c.mu.Unlock()

	// Read every blob before writing anything, so a damaged entry never
	// leaves a half-restored work directory behind.
	bufs := make([][]byte, len(e.outs))
	for i, out := range e.outs {
		data, err := c.fsys.ReadFile(c.blobPath(out.sum))
		if err != nil || int64(len(data)) != out.size ||
			(c.verify && sha256.Sum256(data) != out.sum) {
			c.dropEntry(id)
			c.mu.Lock()
			c.miss()
			c.bytesGauge.Set(float64(c.bytes))
			c.mu.Unlock()
			return false, nil
		}
		bufs[i] = data
	}
	for i, out := range e.outs {
		if err := write(out.name, bufs[i]); err != nil {
			return false, err
		}
	}
	c.mu.Lock()
	c.hit()
	c.mu.Unlock()
	return true, nil
}

// Put records outs as the outputs of action id: missing blobs are written
// content-addressed, the manifest lands last (so a crash mid-Put leaves
// orphan blobs the next load sweeps, never a manifest naming absent blobs),
// and the LRU bound is enforced.  Storing an already-present id only
// freshens its LRU position.  Persistence failures leave the cache
// consistent and are returned for the caller to ignore or log — a failed
// Put costs a future recomputation, nothing else.
func (c *ActionCache) Put(id ActionID, outs []Blob) error {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[id]; ok {
		c.lru.MoveToBack(el)
		return nil
	}
	e := &actionEntry{id: id, outs: make([]manifestOut, len(outs))}
	written := make(map[[sha256.Size]byte]bool, len(outs))
	for i, b := range outs {
		sum := sha256.Sum256(b.Data)
		e.outs[i] = manifestOut{name: b.Name, size: int64(len(b.Data)), sum: sum}
		if _, have := c.blobs[sum]; !have && !written[sum] {
			if err := c.fsys.WriteFile(c.blobPath(sum), b.Data, 0o644); err != nil {
				for w := range written {
					_ = c.fsys.Remove(c.blobPath(w))
				}
				return err
			}
			written[sum] = true
		}
	}
	// The crash points bracket the cache's durability boundary: dying before
	// the manifest write leaves only orphan blobs (swept at next open), dying
	// after leaves a complete, restorable entry.  Both are exercised by the
	// crash matrix in internal/pipeline.
	faults.Crash(faults.CrashManifestPut)
	if err := c.fsys.WriteFile(c.manifestPath(id), formatManifest(e.outs), 0o644); err != nil {
		for w := range written {
			_ = c.fsys.Remove(c.blobPath(w))
		}
		return err
	}
	faults.Crash(faults.CrashManifestPutDone)
	for _, out := range e.outs {
		c.refBlob(out.sum, out.size)
	}
	c.entries[id] = c.lru.PushBack(e)
	c.evictLocked()
	c.bytesGauge.Set(float64(c.bytes))
	return nil
}

// evictLocked removes least-recently-used entries until the blob bytes fit
// the bound.  Callers hold c.mu.
func (c *ActionCache) evictLocked() {
	if c.max <= 0 {
		return
	}
	for c.bytes > c.max && c.lru.Len() > 0 {
		el := c.lru.Front()
		c.removeLocked(el.Value.(*actionEntry))
		c.nEvicts++
		c.evicts.Add(1)
	}
}

// removeLocked deletes one entry's manifest, dereferences its blobs, and
// forgets it.  Callers hold c.mu.
func (c *ActionCache) removeLocked(e *actionEntry) {
	el, ok := c.entries[e.id]
	if !ok {
		return
	}
	c.lru.Remove(el)
	delete(c.entries, e.id)
	_ = c.fsys.Remove(c.manifestPath(e.id))
	for _, out := range e.outs {
		c.unrefBlob(out.sum)
	}
}

// dropEntry removes a damaged entry (not counted as an eviction).
func (c *ActionCache) dropEntry(id ActionID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[id]; ok {
		c.removeLocked(el.Value.(*actionEntry))
	}
}

// Counts reports the lifetime hit, miss, and eviction totals.
func (c *ActionCache) Counts() (hits, misses, evictions int64) {
	if c == nil {
		return 0, 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.nHits, c.nMisses, c.nEvicts
}

// Bytes reports the summed size of resident blobs.
func (c *ActionCache) Bytes() int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// Len reports the number of cached actions.
func (c *ActionCache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}
