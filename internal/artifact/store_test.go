package artifact

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"accelproc/internal/obs"
)

func writeTemp(t *testing.T, dir, name, content string) string {
	t.Helper()
	p := filepath.Join(dir, name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPutGetRoundTrip(t *testing.T) {
	s := NewStore()
	p := writeTemp(t, t.TempDir(), "a.v2", "payload-a")
	s.Put(p, []float64{1, 2, 3})
	v, ok := Cached[[]float64](s, p)
	if !ok {
		t.Fatal("expected cache hit")
	}
	if len(v) != 3 || v[2] != 3 {
		t.Fatalf("wrong value: %v", v)
	}
}

func TestGetMissesUnknownPath(t *testing.T) {
	s := NewStore()
	if _, ok := s.Get("/no/such/path"); ok {
		t.Fatal("hit on never-stored path")
	}
}

// The core coherence contract: a file mutated on disk behind the store must
// not be served from the stale entry.
func TestMutationBehindStoreInvalidates(t *testing.T) {
	s := NewStore()
	dir := t.TempDir()
	p := writeTemp(t, dir, "a.v2", "original content")
	s.Put(p, "decoded-original")

	if _, ok := s.Get(p); !ok {
		t.Fatal("expected initial hit")
	}
	// Mutate with different length: the size check alone must catch it.
	if err := os.WriteFile(p, []byte("mutated"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(p); ok {
		t.Fatal("stale entry served after size change")
	}
	if s.Len() != 0 {
		t.Fatalf("stale entry not dropped, len=%d", s.Len())
	}
}

func TestSameSizeMutationInvalidatesViaMtime(t *testing.T) {
	s := NewStore()
	dir := t.TempDir()
	p := writeTemp(t, dir, "a.v2", "12345678")
	s.Put(p, "decoded")
	// Same length, different content; force a clearly different mtime so
	// the test does not depend on filesystem timestamp granularity.
	if err := os.WriteFile(p, []byte("87654321"), 0o644); err != nil {
		t.Fatal(err)
	}
	past := time.Now().Add(-time.Hour)
	if err := os.Chtimes(p, past, past); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(p); ok {
		t.Fatal("stale entry served after same-size mutation")
	}
}

// The regression the content-hash generation exists for: two same-size
// writes landing within one filesystem timestamp tick used to alias under
// the {size, mtime} key and serve the stale decode.  With the content hash
// folded into the generation the mtime is irrelevant — even a forced
// identical timestamp must miss.
func TestSameSizeSameMtimeMutationInvalidates(t *testing.T) {
	s := NewStore()
	dir := t.TempDir()
	p := writeTemp(t, dir, "a.v2", "12345678")
	info, err := os.Stat(p)
	if err != nil {
		t.Fatal(err)
	}
	s.Put(p, "decoded")
	if err := os.WriteFile(p, []byte("87654321"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Pin the rewritten file to the original timestamp: the worst case a
	// sub-tick double write can produce.
	if err := os.Chtimes(p, info.ModTime(), info.ModTime()); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(p); ok {
		t.Fatal("stale entry served after same-size same-mtime mutation")
	}
}

func TestRemovedFileInvalidates(t *testing.T) {
	s := NewStore()
	p := writeTemp(t, t.TempDir(), "a.v2", "x")
	s.Put(p, "v")
	if err := os.Remove(p); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(p); ok {
		t.Fatal("entry served for removed file")
	}
}

func TestRenameFollowsFile(t *testing.T) {
	s := NewStore()
	dir := t.TempDir()
	p := writeTemp(t, dir, "a.v2", "content")
	s.Put(p, "decoded")
	q := filepath.Join(dir, "b.v2")
	if err := os.Rename(p, q); err != nil {
		t.Fatal(err)
	}
	s.Rename(p, q)
	if _, ok := s.Get(q); !ok {
		t.Fatal("entry did not follow rename")
	}
	if _, ok := s.Get(p); ok {
		t.Fatal("entry still live under old path")
	}
}

func TestRenameWithoutEntryDropsStaleDestination(t *testing.T) {
	s := NewStore()
	dir := t.TempDir()
	dst := writeTemp(t, dir, "dst.v2", "old destination")
	s.Put(dst, "stale")
	src := writeTemp(t, dir, "src.v2", "new destination")
	if err := os.Rename(src, dst); err != nil {
		t.Fatal(err)
	}
	s.Rename(src, dst)
	if _, ok := s.Get(dst); ok {
		t.Fatal("stale destination entry survived an uncached rename over it")
	}
}

func TestCloneFollowsHardlink(t *testing.T) {
	s := NewStore()
	dir := t.TempDir()
	p := writeTemp(t, dir, "a.v2", "content")
	s.Put(p, "decoded")
	q := filepath.Join(dir, "link.v2")
	if err := os.Link(p, q); err != nil {
		t.Skipf("hardlinks unavailable: %v", err)
	}
	s.Clone(p, q)
	if v, ok := s.Get(q); !ok || v != "decoded" {
		t.Fatalf("linked entry: v=%v ok=%v", v, ok)
	}
	if _, ok := s.Get(p); !ok {
		t.Fatal("source entry lost by Clone")
	}
}

func TestInvalidateDir(t *testing.T) {
	s := NewStore()
	dir := t.TempDir()
	scratch := filepath.Join(dir, "tmp_def_00_SS01")
	if err := os.MkdirAll(scratch, 0o755); err != nil {
		t.Fatal(err)
	}
	in := writeTemp(t, scratch, "a.v2", "in scratch")
	out := writeTemp(t, dir, "b.v2", "outside")
	// A sibling whose name shares the scratch dir as a string prefix must
	// survive: only path components count.
	sibling := writeTemp(t, dir, "tmp_def_00_SS011.v2", "prefix sibling")
	s.Put(in, 1)
	s.Put(out, 2)
	s.Put(sibling, 3)
	s.InvalidateDir(scratch)
	if _, ok := s.Get(in); ok {
		t.Fatal("scratch entry survived InvalidateDir")
	}
	if _, ok := s.Get(out); !ok {
		t.Fatal("outside entry dropped by InvalidateDir")
	}
	if _, ok := s.Get(sibling); !ok {
		t.Fatal("string-prefix sibling dropped by InvalidateDir")
	}
}

func TestNilStoreIsInert(t *testing.T) {
	var s *Store
	s.Put("/x", 1)
	s.Invalidate("/x")
	s.InvalidateDir("/x")
	s.Rename("/x", "/y")
	s.Clone("/x", "/y")
	s.SetCounters(nil, nil, nil)
	if _, ok := s.Get("/x"); ok {
		t.Fatal("nil store produced a hit")
	}
	if _, ok := Cached[int](s, "/x"); ok {
		t.Fatal("nil store produced a typed hit")
	}
	if s.Len() != 0 {
		t.Fatal("nil store has entries")
	}
}

func TestCachedTypeMismatchIsMiss(t *testing.T) {
	s := NewStore()
	p := writeTemp(t, t.TempDir(), "a.v2", "x")
	s.Put(p, "a string")
	if _, ok := Cached[int](s, p); ok {
		t.Fatal("type-mismatched entry served")
	}
}

func TestCounters(t *testing.T) {
	s := NewStore()
	o := obs.New()
	hits := o.Counter("cache_hits_total")
	misses := o.Counter("cache_misses_total")
	saved := o.Counter("cache_bytes_saved_total")
	s.SetCounters(hits, misses, saved)
	p := writeTemp(t, t.TempDir(), "a.v2", "eight by") // 8 bytes
	s.Get(p)                                           // miss: never stored
	s.Put(p, "v")
	s.Get(p) // hit
	s.Get(p) // hit
	if got := hits.Value(); got != 2 {
		t.Errorf("hits = %v, want 2", got)
	}
	if got := misses.Value(); got != 1 {
		t.Errorf("misses = %v, want 1", got)
	}
	if got := saved.Value(); got != 16 {
		t.Errorf("bytes saved = %v, want 16", got)
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := NewStore()
	dir := t.TempDir()
	paths := make([]string, 8)
	for i := range paths {
		paths[i] = writeTemp(t, dir, filepath.Base(dir)+string(rune('a'+i)), "content")
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				p := paths[(w+i)%len(paths)]
				switch i % 4 {
				case 0:
					s.Put(p, i)
				case 1:
					s.Get(p)
				case 2:
					s.Invalidate(p)
				case 3:
					s.Rename(p, p)
				}
			}
		}(w)
	}
	wg.Wait()
}
