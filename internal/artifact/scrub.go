package artifact

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"path/filepath"
)

// This file is the cache integrity scrubber behind `smproc -cache-fsck`: a
// full offline pass over an action-cache root that verifies everything the
// regular open path only spot-checks.  The opening load trusts manifests
// that parse and bounds its orphan sweep; Scrub reads every blob, checks it
// against its content-addressed name, cross-checks every manifest against
// the verified blob set, and deletes whatever fails.  Like every other
// cache path, repair means deletion: a damaged entry degrades to a future
// recomputation, never to an error or a wrong restore.

// ScrubReport summarizes one integrity pass.  The counters are disjoint:
// each scanned file is classified at most once.
type ScrubReport struct {
	ActionsScanned     int   `json:"actions_scanned"`
	BlobsScanned       int   `json:"blobs_scanned"`
	ActionsKept        int   `json:"actions_kept"`
	TruncatedManifests int   `json:"truncated_manifests"` // unparseable (cut-off write, bad magic, malformed line)
	MissingBlobs       int   `json:"missing_blobs"`       // manifests naming blobs that are absent or failed verification
	BadDigests         int   `json:"bad_digests"`         // blobs whose bytes do not hash to their name
	StrayFiles         int   `json:"stray_files"`         // non-hex names under actions/ or blobs/
	OrphanBlobs        int   `json:"orphan_blobs"`        // verified blobs no surviving manifest references
	BytesReclaimed     int64 `json:"bytes_reclaimed"`
}

// Clean reports whether the pass found nothing to repair.
func (r ScrubReport) Clean() bool {
	return r.TruncatedManifests == 0 && r.MissingBlobs == 0 &&
		r.BadDigests == 0 && r.StrayFiles == 0 && r.OrphanBlobs == 0
}

// Scrub walks the action cache at root and repairs it in place: blobs are
// re-hashed against their content-addressed names, manifests are parsed and
// cross-checked against the verified blob set, and every failure — plus any
// blob left unreferenced once failing manifests are gone — is deleted.  The
// returned report is machine-readable (JSON tags) for the -cache-fsck CLI.
// Only an unlistable root is an error; per-file damage is repair work, and
// per-file delete races (another process repairing concurrently) are
// ignored.  A scrubbed root always reopens via NewActionCache with zero
// further sweeping to do.
func Scrub(fsys CacheFS, root string) (ScrubReport, error) {
	var r ScrubReport
	actionsDir := filepath.Join(root, "actions")
	blobsDir := filepath.Join(root, "blobs")
	actionEntries, err := fsys.List(actionsDir)
	if err != nil {
		return r, fmt.Errorf("artifact: scrub %s: %w", root, err)
	}
	blobEntries, err := fsys.List(blobsDir)
	if err != nil {
		return r, fmt.Errorf("artifact: scrub %s: %w", root, err)
	}

	// Pass 1: verify every blob's bytes against its content-addressed name.
	// A blob that does not hash to its own name is useless to any manifest,
	// so it goes first and the manifests referencing it fail pass 2.
	blobSize := make(map[[sha256.Size]byte]int64, len(blobEntries))
	for _, de := range blobEntries {
		if de.IsDir() {
			continue
		}
		r.BlobsScanned++
		path := filepath.Join(blobsDir, de.Name())
		sum, ok := parseActionID(de.Name())
		if !ok {
			r.StrayFiles++
			scrubRemove(fsys, path, &r)
			continue
		}
		data, err := fsys.ReadFile(path)
		if err != nil || sha256.Sum256(data) != [sha256.Size]byte(sum) {
			r.BadDigests++
			scrubRemove(fsys, path, &r)
			continue
		}
		blobSize[[sha256.Size]byte(sum)] = int64(len(data))
	}

	// Pass 2: parse every manifest and require all of its blobs verified.
	type keptEntry struct {
		outs []manifestOut
	}
	var kept []keptEntry
	for _, de := range actionEntries {
		if de.IsDir() {
			continue
		}
		r.ActionsScanned++
		path := filepath.Join(actionsDir, de.Name())
		if _, ok := parseActionID(de.Name()); !ok {
			r.StrayFiles++
			scrubRemove(fsys, path, &r)
			continue
		}
		data, err := fsys.ReadFile(path)
		if err != nil {
			continue
		}
		outs, ok := parseManifest(data)
		if !ok {
			r.TruncatedManifests++
			scrubRemove(fsys, path, &r)
			continue
		}
		sound := true
		for _, out := range outs {
			if size, have := blobSize[out.sum]; !have || size != out.size {
				sound = false
				break
			}
		}
		if !sound {
			r.MissingBlobs++
			scrubRemove(fsys, path, &r)
			continue
		}
		kept = append(kept, keptEntry{outs: outs})
	}
	r.ActionsKept = len(kept)

	// Pass 3: delete verified blobs no surviving manifest references.
	live := make(map[[sha256.Size]byte]bool, len(blobSize))
	for _, k := range kept {
		for _, out := range k.outs {
			live[out.sum] = true
		}
	}
	for sum, size := range blobSize {
		if live[sum] {
			continue
		}
		r.OrphanBlobs++
		if fsys.Remove(filepath.Join(blobsDir, hex.EncodeToString(sum[:]))) == nil {
			r.BytesReclaimed += size
		}
	}
	return r, nil
}

// scrubRemove deletes path, crediting its size to the reclaimed total when
// the delete lands.
func scrubRemove(fsys CacheFS, path string, r *ScrubReport) {
	var size int64
	if info, err := fsys.Stat(path); err == nil {
		size = info.Size()
	}
	if fsys.Remove(path) == nil {
		r.BytesReclaimed += size
	}
}
