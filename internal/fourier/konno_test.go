package fourier

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSmoothKonnoOhmachiPreservesConstant(t *testing.T) {
	n := 512
	amps := make([]float64, n)
	for i := range amps {
		amps[i] = 7.5
	}
	out, err := SmoothKonnoOhmachi(amps, 0.01, 40)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if math.Abs(v-7.5) > 1e-9 {
			t.Fatalf("bin %d = %g, want 7.5 (constant spectrum must survive smoothing)", i, v)
		}
	}
}

func TestSmoothKonnoOhmachiReducesVariance(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := 2048
	amps := make([]float64, n)
	for i := range amps {
		amps[i] = 1 + 0.5*rng.Float64()
	}
	out, err := SmoothKonnoOhmachi(amps, 0.01, 40)
	if err != nil {
		t.Fatal(err)
	}
	variance := func(x []float64) float64 {
		var mean float64
		for _, v := range x[100:] {
			mean += v
		}
		mean /= float64(len(x) - 100)
		var s float64
		for _, v := range x[100:] {
			s += (v - mean) * (v - mean)
		}
		return s / float64(len(x)-100)
	}
	if variance(out) >= variance(amps)/2 {
		t.Errorf("smoothing did not reduce variance: %g vs %g", variance(out), variance(amps))
	}
}

func TestSmoothKonnoOhmachiPreservesDCAndLength(t *testing.T) {
	amps := []float64{42, 1, 2, 3, 4, 5}
	out, err := SmoothKonnoOhmachi(amps, 0.5, 40)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(amps) {
		t.Fatalf("length changed: %d", len(out))
	}
	if out[0] != 42 {
		t.Errorf("DC bin = %g, want passthrough 42", out[0])
	}
}

func TestSmoothKonnoOhmachiErrors(t *testing.T) {
	if _, err := SmoothKonnoOhmachi([]float64{1}, 0, 40); err == nil {
		t.Error("zero df accepted")
	}
	if _, err := SmoothKonnoOhmachi([]float64{1}, 0.1, 0); err == nil {
		t.Error("zero bandwidth accepted")
	}
	out, err := SmoothKonnoOhmachi(nil, 0.1, 40)
	if err != nil || len(out) != 0 {
		t.Errorf("empty input: %v, %v", out, err)
	}
}

// Property: smoothing is bounded by the input range (it is a weighted
// average with non-negative weights).
func TestSmoothKonnoOhmachiBounded(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%300 + 2
		rng := rand.New(rand.NewSource(seed))
		amps := make([]float64, n)
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := range amps {
			amps[i] = rng.Float64() * 100
			if i >= 1 {
				if amps[i] < lo {
					lo = amps[i]
				}
				if amps[i] > hi {
					hi = amps[i]
				}
			}
		}
		out, err := SmoothKonnoOhmachi(amps, 0.05, 40)
		if err != nil {
			return false
		}
		for i := 1; i < n; i++ {
			if out[i] < lo-1e-9 || out[i] > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
