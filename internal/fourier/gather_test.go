package fourier

import "testing"

// TestGatherPoolAllocContract pins the streaming gather allocation budget:
// once a buffer has grown to a record's size and been released, re-gathering
// a record of the same size allocates nothing per chunk.
func TestGatherPoolAllocContract(t *testing.T) {
	const (
		chunkLen = 512
		chunks   = 32
	)
	pool := NewGatherPool(chunkLen)
	chunk := make([]float64, chunkLen)

	// Warm: one full gather grows the pooled buffer to record size.
	b := pool.Get()
	for i := 0; i < chunks; i++ {
		b.Append(chunk)
	}
	b.Release()

	allocs := testing.AllocsPerRun(50, func() {
		b := pool.Get()
		for i := 0; i < chunks; i++ {
			b.Append(chunk)
		}
		b.Release()
	})
	// The whole steady-state gather — chunks appends plus get/release —
	// must not allocate at all.
	if allocs != 0 {
		t.Fatalf("steady-state gather allocates %.1f times per record, want 0", allocs)
	}
}

// TestGatherPoolFreshCapacity pins the fix this pool encodes: a fresh buffer
// is sized for one chunk, not for the largest record seen.
func TestGatherPoolFreshCapacity(t *testing.T) {
	pool := NewGatherPool(256)
	b := pool.Get()
	if got := cap(b.Data); got != 256 {
		t.Fatalf("fresh gather buffer capacity %d, want one chunk (256)", got)
	}
	if len(b.Data) != 0 {
		t.Fatalf("fresh gather buffer not empty: %d", len(b.Data))
	}
	b.Release()
}

func TestGatherPoolAccumulates(t *testing.T) {
	pool := NewGatherPool(4)
	b := pool.Get()
	b.Append([]float64{1, 2, 3})
	b.Append([]float64{4, 5})
	if len(b.Data) != 5 {
		t.Fatalf("gathered %d samples, want 5", len(b.Data))
	}
	for i, v := range b.Data {
		if v != float64(i+1) {
			t.Fatalf("sample %d is %g, want %d", i, v, i+1)
		}
	}
	b.Release()
	// A reused buffer starts empty.
	if b2 := pool.Get(); len(b2.Data) != 0 {
		t.Fatalf("reused buffer not reset: %d samples", len(b2.Data))
	}
}
