package fourier

import (
	"fmt"
	"math"

	"accelproc/internal/dsp"
	"accelproc/internal/seismic"
)

// HVSR is the horizontal-to-vertical spectral ratio of one record — the
// Nakamura technique for site characterization, the kind of "site-effect
// study" the paper names as a primary use of strong-motion data.  The curve
// peaks near the site's fundamental resonance frequency.
type HVSR struct {
	DF    float64   // frequency step, Hz
	Ratio []float64 // H/V per bin; bin 0 (DC) is zero
}

// Frequency returns the frequency of bin k in Hz.
func (h HVSR) Frequency(k int) float64 { return float64(k) * h.DF }

// HVConfig tunes the spectral-ratio computation.
type HVConfig struct {
	// SmoothingB is the Konno-Ohmachi bandwidth coefficient applied to the
	// three component spectra before the ratio; zero selects 40.
	SmoothingB float64
	// MinFreq/MaxFreq bound the peak search in Hz; zeros select 0.2-20 Hz,
	// the conventional microtremor band.
	MinFreq, MaxFreq float64
}

func (c HVConfig) withDefaults() HVConfig {
	if c.SmoothingB == 0 {
		c.SmoothingB = 40
	}
	if c.MinFreq == 0 {
		c.MinFreq = 0.2
	}
	if c.MaxFreq == 0 {
		c.MaxFreq = 20
	}
	return c
}

// ComputeHVSR computes the smoothed H/V spectral ratio of a record:
// the geometric mean of the two horizontal amplitude spectra over the
// vertical one, all Konno-Ohmachi smoothed.
func ComputeHVSR(rec seismic.Record, cfg HVConfig) (HVSR, error) {
	if err := rec.Validate(); err != nil {
		return HVSR{}, err
	}
	cfg = cfg.withDefaults()
	var amps [3][]float64
	var df float64
	for ci := range rec.Accel {
		a, d, err := dsp.AmplitudeSpectrum(rec.Accel[ci].Data, rec.Accel[ci].DT)
		if err != nil {
			return HVSR{}, err
		}
		sm, err := SmoothKonnoOhmachi(a, d, cfg.SmoothingB)
		if err != nil {
			return HVSR{}, err
		}
		amps[ci] = sm
		df = d
	}
	n := len(amps[0])
	out := HVSR{DF: df, Ratio: make([]float64, n)}
	for k := 1; k < n; k++ {
		h := math.Sqrt(amps[seismic.Longitudinal][k] * amps[seismic.Transversal][k])
		v := amps[seismic.Vertical][k]
		if v > 0 {
			out.Ratio[k] = h / v
		}
	}
	return out, nil
}

// FundamentalFrequency returns the frequency (Hz) and amplitude of the
// largest H/V peak inside the configured band — the site's fundamental
// resonance estimate.  An error is returned if the band holds no bins.
func (h HVSR) FundamentalFrequency(cfg HVConfig) (freq, amplitude float64, err error) {
	cfg = cfg.withDefaults()
	if h.DF <= 0 || len(h.Ratio) == 0 {
		return 0, 0, fmt.Errorf("fourier: empty H/V curve")
	}
	bestK := -1
	for k := 1; k < len(h.Ratio); k++ {
		f := h.Frequency(k)
		if f < cfg.MinFreq || f > cfg.MaxFreq {
			continue
		}
		if bestK < 0 || h.Ratio[k] > h.Ratio[bestK] {
			bestK = k
		}
	}
	if bestK < 0 {
		return 0, 0, fmt.Errorf("fourier: no H/V bins inside [%g, %g] Hz", cfg.MinFreq, cfg.MaxFreq)
	}
	return h.Frequency(bestK), h.Ratio[bestK], nil
}
