package fourier

import (
	"math"
	"math/rand"
	"testing"

	"accelproc/internal/seismic"
)

// siteRecord builds a record whose horizontals carry a resonant
// amplification at f0 while the vertical stays flat broadband noise —
// the textbook H/V situation.
func siteRecord(f0 float64, seed int64) seismic.Record {
	const n, dt = 16384, 0.01
	rng := rand.New(rand.NewSource(seed))
	var rec seismic.Record
	rec.Station = "SITE"
	for ci := range rec.Accel {
		data := make([]float64, n)
		for i := range data {
			data[i] = rng.NormFloat64()
		}
		if ci != int(seismic.Vertical) {
			// Add a strong narrow-band resonance on the horizontals.
			ph := rng.Float64() * 2 * math.Pi
			for i := range data {
				data[i] += 6 * math.Sin(2*math.Pi*f0*float64(i)*dt+ph)
			}
		}
		rec.Accel[ci] = seismic.Trace{DT: dt, Data: data}
	}
	return rec
}

func TestComputeHVSRFindsSiteFrequency(t *testing.T) {
	const f0 = 2.5
	rec := siteRecord(f0, 7)
	hv, err := ComputeHVSR(rec, HVConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if hv.DF <= 0 || len(hv.Ratio) == 0 {
		t.Fatalf("empty curve: %+v", hv)
	}
	freq, amp, err := hv.FundamentalFrequency(HVConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(freq-f0) > 0.3 {
		t.Errorf("fundamental frequency = %g Hz, want ~%g", freq, f0)
	}
	if amp < 2 {
		t.Errorf("peak amplitude = %g, want clearly above 1", amp)
	}
}

func TestComputeHVSRFlatSiteIsNearUnity(t *testing.T) {
	// Identical statistics on all three components: H/V ~ 1 everywhere.
	rng := rand.New(rand.NewSource(8))
	const n, dt = 8192, 0.01
	var rec seismic.Record
	rec.Station = "FLAT"
	for ci := range rec.Accel {
		data := make([]float64, n)
		for i := range data {
			data[i] = rng.NormFloat64()
		}
		rec.Accel[ci] = seismic.Trace{DT: dt, Data: data}
	}
	hv, err := ComputeHVSR(rec, HVConfig{})
	if err != nil {
		t.Fatal(err)
	}
	_, amp, err := hv.FundamentalFrequency(HVConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if amp > 2.5 {
		t.Errorf("flat site H/V peak = %g, want near 1", amp)
	}
}

func TestHVSRErrors(t *testing.T) {
	if _, err := ComputeHVSR(seismic.Record{}, HVConfig{}); err == nil {
		t.Error("invalid record accepted")
	}
	var empty HVSR
	if _, _, err := empty.FundamentalFrequency(HVConfig{}); err == nil {
		t.Error("empty curve accepted")
	}
	rec := siteRecord(2, 9)
	hv, err := ComputeHVSR(rec, HVConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// dt = 0.01 puts Nyquist at 50 Hz; a band entirely above it holds no
	// bins and must be rejected.
	if _, _, err := hv.FundamentalFrequency(HVConfig{MinFreq: 60, MaxFreq: 70}); err == nil {
		t.Error("band beyond Nyquist accepted")
	}
}

func TestHVSRFrequencyAccessor(t *testing.T) {
	hv := HVSR{DF: 0.25, Ratio: make([]float64, 5)}
	if got := hv.Frequency(4); got != 1.0 {
		t.Errorf("Frequency(4) = %g, want 1", got)
	}
}
