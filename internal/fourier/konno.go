package fourier

import (
	"fmt"
	"math"
)

// SmoothKonnoOhmachi applies Konno-Ohmachi (1998) smoothing to a spectrum
// sampled at uniform frequency step df, returning a new slice.  The window
//
//	W(f, fc) = [ sin(b log10(f/fc)) / (b log10(f/fc)) ]^4
//
// is constant-width on a logarithmic frequency axis, the standard smoothing
// for site-response and H/V spectral work; b controls the bandwidth
// (b = 40 is conventional; larger is narrower).  Bin 0 (DC) is copied
// through untouched, since it has no logarithmic position.
//
// The computation windows each center frequency to the band where the
// kernel is non-negligible (|log10(f/fc)| <= 3/b), so the cost is
// O(n · bandwidth) rather than O(n²).
func SmoothKonnoOhmachi(amps []float64, df, b float64) ([]float64, error) {
	if df <= 0 {
		return nil, fmt.Errorf("fourier: non-positive frequency step %g", df)
	}
	if b <= 0 {
		return nil, fmt.Errorf("fourier: non-positive Konno-Ohmachi bandwidth %g", b)
	}
	n := len(amps)
	out := make([]float64, n)
	if n == 0 {
		return out, nil
	}
	out[0] = amps[0]
	// The kernel is ~0 beyond |log10 ratio| = 3/b.
	maxLog := 3.0 / b
	ratioHi := math.Pow(10, maxLog)
	for c := 1; c < n; c++ {
		fc := float64(c) * df
		lo := int(fc / ratioHi / df)
		if lo < 1 {
			lo = 1
		}
		hi := int(fc * ratioHi / df)
		if hi > n-1 {
			hi = n - 1
		}
		var num, den float64
		for k := lo; k <= hi; k++ {
			f := float64(k) * df
			x := b * math.Log10(f/fc)
			var w float64
			if x == 0 {
				w = 1
			} else {
				s := math.Sin(x) / x
				w = s * s * s * s
			}
			num += w * amps[k]
			den += w
		}
		if den > 0 {
			out[c] = num / den
		} else {
			out[c] = amps[c]
		}
	}
	return out, nil
}
