package fourier

import "sync"

// GatherPool recycles the sample buffers the streaming gather consumers
// (pipeline processes #7 and #16, which need a whole trace before they can
// transform it) accumulate stream chunks into.  Fresh buffers are pre-sized
// for one chunk — not for the largest record, which at a million points
// would pin 8 MB per pooled buffer whether or not a large record ever
// arrives — and grow by amortized doubling as chunks append.  Released
// buffers keep their grown capacity, so after the first record of a given
// size the steady state allocates nothing per chunk (pinned by the alloc
// contract test).
type GatherPool struct {
	chunkLen int
	p        sync.Pool
}

// NewGatherPool returns a pool whose fresh buffers hold one chunk of
// chunkLen samples without growing.
func NewGatherPool(chunkLen int) *GatherPool {
	if chunkLen <= 0 {
		chunkLen = 1
	}
	g := &GatherPool{chunkLen: chunkLen}
	g.p.New = func() any {
		return &GatherBuffer{pool: g, Data: make([]float64, 0, chunkLen)}
	}
	return g
}

// Get returns an empty buffer.
func (g *GatherPool) Get() *GatherBuffer {
	b := g.p.Get().(*GatherBuffer)
	b.Data = b.Data[:0]
	return b
}

// GatherBuffer accumulates the samples of one trace chunk by chunk.
type GatherBuffer struct {
	pool *GatherPool
	Data []float64
}

// Append adds the next chunk's samples.
func (b *GatherBuffer) Append(chunk []float64) {
	b.Data = append(b.Data, chunk...)
}

// Release empties the buffer and returns it to the pool, retaining its
// capacity for the next gather.
func (b *GatherBuffer) Release() {
	b.Data = b.Data[:0]
	b.pool.p.Put(b)
}
