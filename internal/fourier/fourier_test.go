package fourier

import (
	"math"
	"testing"

	"accelproc/internal/dsp"
	"accelproc/internal/seismic"
	"accelproc/internal/smformat"
	"accelproc/internal/synth"
)

// synthFourier builds a Fourier struct whose velocity spectrum follows
// A(f) = f + c/f: decaying toward long periods until f = sqrt(c), then
// rising as noise dominates — a clean V-shaped inflection at sqrt(c) Hz.
func synthFourier(c float64) smformat.Fourier {
	const nbins = 2048
	const df = 0.005
	f := smformat.Fourier{
		Station:   "SS01",
		Component: seismic.Longitudinal,
		DF:        df,
		Accel:     make([]float64, nbins),
		Vel:       make([]float64, nbins),
		Disp:      make([]float64, nbins),
	}
	for k := 1; k < nbins; k++ {
		fk := float64(k) * df
		f.Accel[k] = fk
		f.Vel[k] = fk + c/fk
		f.Disp[k] = 1 / fk
	}
	return f
}

func TestCalculateInflectionPointFindsCorner(t *testing.T) {
	// Minimum of f + 0.04/f is at f = 0.2 Hz (period 5 s).
	f := synthFourier(0.04)
	spec, err := CalculateInflectionPoint(f, PickConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if spec.FPL < 0.1 || spec.FPL > 0.3 {
		t.Errorf("FPL = %g Hz, want ~0.2", spec.FPL)
	}
	if math.Abs(spec.FSL-spec.FPL/2) > 1e-12 {
		t.Errorf("FSL = %g, want FPL/2 = %g", spec.FSL, spec.FPL/2)
	}
	// High corners from the fallback.
	def := DefaultSpec()
	if spec.FPH != def.FPH || spec.FSH != def.FSH {
		t.Errorf("high corners = %g/%g, want defaults %g/%g", spec.FPH, spec.FSH, def.FPH, def.FSH)
	}
	if err := spec.Validate(0.005); err != nil {
		t.Errorf("picked spec invalid: %v", err)
	}
}

func TestCalculateInflectionPointEarlyVsFullScanAgree(t *testing.T) {
	f := synthFourier(0.04)
	early, err := CalculateInflectionPoint(f, PickConfig{})
	if err != nil {
		t.Fatal(err)
	}
	full, err := CalculateInflectionPoint(f, PickConfig{FullScan: true})
	if err != nil {
		t.Fatal(err)
	}
	// On a V-shaped spectrum rising monotonically past the corner, the
	// full scan's last inflection tracks later rises; both must stay at or
	// beyond the early pick and below the scan start.
	if early.FPL <= 0 || full.FPL <= 0 {
		t.Fatalf("picks: early %g, full %g", early.FPL, full.FPL)
	}
	if full.FPL > early.FPL+1e-9 {
		t.Errorf("full-scan FPL %g exceeds early-termination FPL %g", full.FPL, early.FPL)
	}
}

func TestCalculateInflectionPointFallsBackOnCleanSpectrum(t *testing.T) {
	// A(f) = f decays monotonically toward long periods: no inflection.
	f := synthFourier(0)
	spec, err := CalculateInflectionPoint(f, PickConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if spec != DefaultSpec() {
		t.Errorf("spec = %+v, want fallback %+v", spec, DefaultSpec())
	}
}

func TestCalculateInflectionPointTooFewBins(t *testing.T) {
	f := smformat.Fourier{
		Station:   "SS01",
		Component: seismic.Longitudinal,
		DF:        0.5, // only bins 1..2 fall below 1 Hz
		Accel:     []float64{0, 1, 1, 1},
		Vel:       []float64{0, 1, 1, 1},
		Disp:      []float64{0, 1, 1, 1},
	}
	spec, err := CalculateInflectionPoint(f, PickConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if spec != DefaultSpec() {
		t.Errorf("spec = %+v, want fallback", spec)
	}
}

func TestCalculateInflectionPointRejectsInvalid(t *testing.T) {
	if _, err := CalculateInflectionPoint(smformat.Fourier{}, PickConfig{}); err == nil {
		t.Error("invalid Fourier accepted")
	}
}

func TestSpectraMatchesDSP(t *testing.T) {
	n := 1000
	v2 := smformat.V2{
		Station:   "SS01",
		Component: seismic.Vertical,
		DT:        0.01,
		Filter:    DefaultSpec(),
		Accel:     make([]float64, n),
		Vel:       make([]float64, n),
		Disp:      make([]float64, n),
	}
	for i := 0; i < n; i++ {
		ti := float64(i) * v2.DT
		v2.Accel[i] = math.Sin(2 * math.Pi * 5 * ti)
		v2.Vel[i] = math.Cos(2 * math.Pi * 5 * ti)
		v2.Disp[i] = math.Sin(2 * math.Pi * 1 * ti)
	}
	f, err := Spectra(v2)
	if err != nil {
		t.Fatal(err)
	}
	if f.Station != v2.Station || f.Component != v2.Component {
		t.Error("identity not propagated")
	}
	if len(f.Accel) != n/2+1 {
		t.Errorf("bins = %d, want %d", len(f.Accel), n/2+1)
	}
	wantAmps, wantDF, err := dsp.AmplitudeSpectrum(v2.Accel, v2.DT)
	if err != nil {
		t.Fatal(err)
	}
	if f.DF != wantDF {
		t.Errorf("DF = %g, want %g", f.DF, wantDF)
	}
	for k := range wantAmps {
		if f.Accel[k] != wantAmps[k] {
			t.Fatalf("bin %d differs from dsp.AmplitudeSpectrum", k)
		}
	}
	if err := f.Validate(); err != nil {
		t.Errorf("spectra invalid: %v", err)
	}
	if _, err := Spectra(smformat.V2{}); err == nil {
		t.Error("invalid V2 accepted")
	}
}

func TestAnalyzeRecord(t *testing.T) {
	var fs [3]smformat.Fourier
	for ci, comp := range seismic.Components {
		f := synthFourier(0.04)
		f.Component = comp
		fs[ci] = f
	}
	specs, err := AnalyzeRecord(fs, PickConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 3 {
		t.Fatalf("got %d specs, want 3", len(specs))
	}
	for _, comp := range seismic.Components {
		key := smformat.SignalKey{Station: "SS01", Component: comp}
		spec, ok := specs[key]
		if !ok {
			t.Fatalf("no spec for %s", key)
		}
		if spec.FPL < 0.1 || spec.FPL > 0.3 {
			t.Errorf("%s: FPL = %g, want ~0.2", key, spec.FPL)
		}
	}
}

func TestAnalyzeRecordRejectsMixedStations(t *testing.T) {
	var fs [3]smformat.Fourier
	for ci, comp := range seismic.Components {
		f := synthFourier(0.04)
		f.Component = comp
		fs[ci] = f
	}
	fs[2].Station = "OTHER"
	if _, err := AnalyzeRecord(fs, PickConfig{}); err == nil {
		t.Error("mixed stations accepted")
	}
	fs[2].Station = "SS01"
	fs[1].Component = seismic.Vertical
	if _, err := AnalyzeRecord(fs, PickConfig{}); err == nil {
		t.Error("wrong component order accepted")
	}
}

// End-to-end sanity: a synthetic record processed through the default
// filter then Fourier analysis yields a pickable, valid spec.
func TestPickOnSyntheticRecord(t *testing.T) {
	rec, err := synth.Record(synth.Params{
		Station: "SS01", Seed: 5, DT: 0.01, Samples: 8192,
		Magnitude: 5.5, Distance: 40, NoiseFloor: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	accel, err := dsp.BandPass(rec.Accel[0].Data, rec.Accel[0].DT, DefaultSpec(), 0.05)
	if err != nil {
		t.Fatal(err)
	}
	vel := dsp.Integrate(accel, rec.Accel[0].DT)
	disp := dsp.Integrate(vel, rec.Accel[0].DT)
	v2 := smformat.V2{
		Station: "SS01", Component: seismic.Longitudinal, DT: rec.Accel[0].DT,
		Filter: DefaultSpec(), Accel: accel, Vel: vel, Disp: disp,
	}
	f, err := Spectra(v2)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := CalculateInflectionPoint(f, PickConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := spec.Validate(v2.DT); err != nil {
		t.Errorf("picked spec invalid: %v (spec %+v)", err, spec)
	}
}
