// Package fourier computes the Fourier spectral products of the pipeline:
// the <station><c>.f amplitude spectra (process #7) and the FPL/FSL filter
// corner picks from the velocity Fourier spectrum (process #10).
//
// The paper's process #10 ("Obtain FSL & FPL values") searches the velocity
// Fourier spectrum of each component for the inflection point at periods
// greater than one second — the period beyond which long-period noise
// overtakes the signal — and derives from it the corner frequencies of the
// definitive band-pass correction.  CalculateInflectionPoint below mirrors
// the early-termination scan described in section V-B of the paper.
package fourier

import (
	"fmt"
	"math"

	"accelproc/internal/dsp"
	"accelproc/internal/seismic"
	"accelproc/internal/smformat"
)

// Spectra computes the single-sided Fourier amplitude spectra of a corrected
// component (acceleration, velocity, displacement) on a common frequency
// grid, producing the payload of an F file.
func Spectra(v smformat.V2) (smformat.Fourier, error) {
	if err := v.Validate(); err != nil {
		return smformat.Fourier{}, err
	}
	accAmp, df, err := dsp.AmplitudeSpectrum(v.Accel, v.DT)
	if err != nil {
		return smformat.Fourier{}, err
	}
	velAmp, _, err := dsp.AmplitudeSpectrum(v.Vel, v.DT)
	if err != nil {
		return smformat.Fourier{}, err
	}
	dispAmp, _, err := dsp.AmplitudeSpectrum(v.Disp, v.DT)
	if err != nil {
		return smformat.Fourier{}, err
	}
	return smformat.Fourier{
		Station:   v.Station,
		Component: v.Component,
		DF:        df,
		Accel:     accAmp,
		Vel:       velAmp,
		Disp:      dispAmp,
	}, nil
}

// PickConfig tunes the inflection-point search.
type PickConfig struct {
	// MinPeriod is the period (s) at which the scan starts; the paper scans
	// "periods greater than one second".  Zero selects 1.0 s.
	MinPeriod float64
	// SmoothHalfWidth is the half-width (bins) of the moving-average
	// smoothing applied to the log-amplitudes before slope analysis.
	// Zero selects 2.
	SmoothHalfWidth int
	// RunLength is how many consecutive rising points constitute an
	// inflection.  Zero selects 3.
	RunLength int
	// Fallback supplies the corners used when no inflection is found
	// (very clean records).  A zero Fallback selects DefaultSpec.
	Fallback dsp.BandPassSpec
	// FullScan disables the early-termination strategy the paper credits
	// for process #10's small execution time: instead of stopping at the
	// first inflection, the scan continues and keeps the last inflection
	// found.  The zero value (early termination) is the paper's approach;
	// FullScan is the ablation variant benchmarked in the evaluation.
	FullScan bool
}

// DefaultSpec returns the default band-pass corners used by process #4
// before any record-specific analysis (0.10-0.25 Hz low transition,
// 23-25 Hz high transition — typical strong-motion defaults).
func DefaultSpec() dsp.BandPassSpec {
	return dsp.BandPassSpec{FSL: 0.10, FPL: 0.25, FPH: 23, FSH: 25}
}

func (c PickConfig) withDefaults() PickConfig {
	if c.MinPeriod == 0 {
		c.MinPeriod = 1.0
	}
	if c.SmoothHalfWidth == 0 {
		c.SmoothHalfWidth = 2
	}
	if c.RunLength == 0 {
		c.RunLength = 3
	}
	if c.Fallback == (dsp.BandPassSpec{}) {
		c.Fallback = DefaultSpec()
	}
	return c
}

// CalculateInflectionPoint scans the velocity Fourier spectrum of one
// component for the long-period inflection and returns the corresponding
// band-pass corners: FPL is the frequency of the inflection and FSL is half
// of it (one-octave transition), with the high corners taken from the
// fallback spec.  If the spectrum never turns upward the fallback corners
// are returned.
func CalculateInflectionPoint(f smformat.Fourier, cfg PickConfig) (dsp.BandPassSpec, error) {
	if err := f.Validate(); err != nil {
		return dsp.BandPassSpec{}, err
	}
	cfg = cfg.withDefaults()
	spec := cfg.Fallback

	// The scan walks the bins with period > MinPeriod (frequency below
	// 1/MinPeriod) in order of increasing period: scan index i maps to
	// frequency bin kmax-i, so i = 0 is the period just above MinPeriod
	// and indices grow with period.  Bin 0 (DC) is excluded: it has no
	// period.  No bins are materialized: with early termination (the
	// paper's strategy) everything past the first inflection is never
	// touched at all.
	maxF := 1 / cfg.MinPeriod
	kmax := int(maxF / f.DF)
	if kmax > len(f.Vel)-1 {
		kmax = len(f.Vel) - 1
	}
	n := kmax // scan indices 0..n-1 map to bins kmax..1
	if n < 2*cfg.SmoothHalfWidth+cfg.RunLength+2 {
		// Not enough long-period bins to analyze; keep defaults.
		return spec, nil
	}
	sm := newLazySmoother(func(i int) float64 { return f.Vel[kmax-i] }, n, cfg.SmoothHalfWidth)

	// Scan for RunLength consecutive rising steps: the spectrum turning
	// upward with growing period marks noise dominance.
	run := 0
	inflectionAt := -1
	for i := 1; i < n; i++ {
		if sm.at(i) > sm.at(i-1) {
			run++
			if run >= cfg.RunLength {
				inflectionAt = i - cfg.RunLength // start of the rise
				if !cfg.FullScan {
					break
				}
			}
		} else {
			run = 0
		}
	}
	if inflectionAt < 0 {
		return spec, nil
	}
	fpl := f.Frequency(kmax - inflectionAt)
	if fpl <= 0 || fpl >= spec.FPH {
		return spec, nil
	}
	spec.FPL = fpl
	spec.FSL = fpl / 2
	return spec, nil
}

// lazySmoother evaluates moving-average smoothed log10 amplitudes on
// demand, converting each amplitude to log scale at most once.  Zero
// amplitudes are floored to avoid -Inf.
type lazySmoother struct {
	amp       func(i int) float64
	n         int
	logs      []float64
	computed  []bool
	halfWidth int
}

func newLazySmoother(amp func(i int) float64, n, halfWidth int) *lazySmoother {
	return &lazySmoother{
		amp:       amp,
		n:         n,
		logs:      make([]float64, n),
		computed:  make([]bool, n),
		halfWidth: halfWidth,
	}
}

func (s *lazySmoother) log(i int) float64 {
	if !s.computed[i] {
		const floor = 1e-30
		a := s.amp(i)
		if a < floor {
			a = floor
		}
		s.logs[i] = math.Log10(a)
		s.computed[i] = true
	}
	return s.logs[i]
}

// at returns the smoothed log-amplitude at index i.
func (s *lazySmoother) at(i int) float64 {
	lo, hi := i-s.halfWidth, i+s.halfWidth
	if lo < 0 {
		lo = 0
	}
	if hi >= s.n {
		hi = s.n - 1
	}
	var sum float64
	for j := lo; j <= hi; j++ {
		sum += s.log(j)
	}
	return sum / float64(hi-lo+1)
}

// AnalyzeRecord runs the inflection pick on all three components of one
// station (the loop that the paper parallelizes with "#pragma omp parallel
// for" over j = 0..2 in section V-B) and returns a per-component spec map
// fragment.  The three F inputs must belong to the same station.
func AnalyzeRecord(fs [3]smformat.Fourier, cfg PickConfig) (map[smformat.SignalKey]dsp.BandPassSpec, error) {
	station := fs[0].Station
	out := make(map[smformat.SignalKey]dsp.BandPassSpec, 3)
	for ci, f := range fs {
		if f.Station != station {
			return nil, fmt.Errorf("fourier: mixed stations %q and %q in one analysis", station, f.Station)
		}
		if f.Component != seismic.Components[ci] {
			return nil, fmt.Errorf("fourier: component %d is %v, want %v", ci, f.Component, seismic.Components[ci])
		}
		spec, err := CalculateInflectionPoint(f, cfg)
		if err != nil {
			return nil, fmt.Errorf("fourier: station %s component %v: %w", station, f.Component, err)
		}
		out[smformat.SignalKey{Station: station, Component: f.Component}] = spec
	}
	return out, nil
}
