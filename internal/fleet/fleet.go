// Package fleet packs many events' record-level dataflow graphs onto one
// shared bounded worker pool.
//
// pipeline.RunBatch gives each event its own dataflow pool, so worker slots
// fragment: an event in its serial tail (a join node, one slow station)
// holds W workers while its siblings queue.  The fleet scheduler instead
// merges every admitted event's task graph into a single ready set and lets
// one pool of W workers drain them all, with two levers:
//
//   - Admission control caps the number of concurrently-open events, bounding
//     scratch footprint and keeping per-event latency from degrading into
//     round-robin thrash over the whole queue.
//   - A policy knob picks the dispatch order among ready tasks.  Latency
//     dedicates the pool to the oldest admitted events, critical-path-first —
//     the interval-mapping endpoint that minimizes p99 event latency.
//     Throughput packs the global ready queue critical-path-first regardless
//     of owner, keeping every worker saturated — the records/sec endpoint.
//     Balanced (the default) protects the single oldest open event's critical
//     path and back-fills the remaining slots globally.
//
// Events flow through three phases on pool workers: Build (the event's
// stage-I prologue, producing its dataflow graph), node execution (the
// merged ready set), and Finish (materialization and result assembly).  The
// admission slot is held for the whole span, so "open events" bounds real
// work, not just graph residency.  Nodes that hit the action cache complete
// in microseconds, freeing their worker immediately — a warm event drains
// at cache speed without holding slots.
package fleet

import (
	"fmt"
	"math"
	"sync"
	"time"

	"accelproc/internal/dataflow"
	"accelproc/internal/obs"
	"accelproc/internal/parallel"
)

// Policy selects the dispatch order among ready tasks of admitted events.
type Policy int

const (
	// Balanced protects the oldest open event's critical path and back-fills
	// idle workers with the best global candidates.  The default.
	Balanced Policy = iota
	// Latency orders ready tasks oldest-event-first, critical-path-first
	// within an event, minimizing per-event (p99) latency.
	Latency
	// Throughput orders the merged ready queue critical-path-first across
	// all events, maximizing aggregate records/sec.
	Throughput
)

// ParsePolicy maps a CLI spelling to a Policy; the empty string selects
// Balanced.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "", "balanced":
		return Balanced, nil
	case "latency":
		return Latency, nil
	case "throughput":
		return Throughput, nil
	}
	return 0, fmt.Errorf("fleet: unknown policy %q (want latency, throughput, or balanced)", s)
}

func (p Policy) String() string {
	switch p {
	case Latency:
		return "latency"
	case Throughput:
		return "throughput"
	default:
		return "balanced"
	}
}

// DefaultAdmit returns the admission cap used when Options.Admit <= 0.
// Latency admits one event at a time — the strict endpoint, since an event's
// latency clock starts at admission and any co-admitted sibling steals
// critical-path workers.  Throughput opens as many events as the pool is
// wide, so the merged ready set can always saturate it.  Balanced opens two:
// one protected, one back-filling.
func (p Policy) DefaultAdmit(workers int) int {
	switch p {
	case Latency:
		return 1
	case Throughput:
		if workers < 2 {
			return 2
		}
		return workers
	default:
		return 2
	}
}

// Event is one job for the scheduler.  Build and Finish run on pool workers;
// node bodies come from the graph Build returns.
type Event struct {
	// Name labels the event in results.
	Name string
	// Build performs the event's pre-graph work (the pipeline's stage-I
	// prologue) and returns its dataflow graph.  A Build error fails the
	// event; its graph never runs.
	Build func() (*dataflow.Graph, error)
	// Finish completes the event after its graph drains (or Build fails),
	// receiving the first error per dataflow error-selection semantics and
	// returning the event's final error.  Nil Finish passes err through.
	Finish func(err error) error
}

// Result reports one event's passage through the scheduler.  Admitted and
// Done are offsets from the Run call; every event is considered enqueued at
// offset zero.
type Result struct {
	Name     string
	Err      error
	Admitted time.Duration
	Done     time.Duration
}

// Wait returns how long the event sat in the arrival queue before admission.
func (r Result) Wait() time.Duration { return r.Admitted }

// Latency returns the admission-to-done latency — the clock the latency
// policy minimizes.
func (r Result) Latency() time.Duration { return r.Done - r.Admitted }

// Options configures a fleet run.
type Options struct {
	// Workers bounds the shared pool; <= 0 selects one worker per processor.
	Workers int
	// Admit caps concurrently-open events; <= 0 selects the policy default
	// (see Policy.DefaultAdmit).
	Admit int
	// Policy selects the dispatch order; the zero value is Balanced.
	Policy Policy
	// Observer receives fleet_* scheduler gauges and worker occupancy; nil
	// disables instrumentation.
	Observer *obs.Observer
}

// item is one dispatchable unit in the shared ready set: either an event's
// Build or one graph node.  pri/weight are snapshot at enqueue time (they
// are immutable per node); builds carry infinite priority so an admitted
// event's prologue never starves behind node work.
type item struct {
	evIdx  int
	node   dataflow.NodeID
	build  bool
	pri    float64
	weight float64
	enq    time.Duration
}

// less reports whether a dispatches strictly before b under policy.  oldest
// is the smallest event index present in the ready set (only consulted by
// Balanced).  The order is total — every tie resolves on (event, node) — so
// single-worker schedules are reproducible.
func less(policy Policy, oldest int, a, b item) bool {
	switch policy {
	case Latency:
		if a.evIdx != b.evIdx {
			return a.evIdx < b.evIdx
		}
	case Balanced:
		ao, bo := a.evIdx == oldest, b.evIdx == oldest
		if ao != bo {
			return ao
		}
	}
	if a.pri != b.pri {
		return a.pri > b.pri
	}
	if a.weight != b.weight {
		return a.weight > b.weight
	}
	if a.evIdx != b.evIdx {
		return a.evIdx < b.evIdx
	}
	return a.node < b.node
}

// popBest removes and returns the best ready item under policy.  Linear
// scan: the ready set is bounded by open events times their widest antichain
// (tens to a few hundred items), and a scan keeps the policy comparator free
// to consult set-wide state (the oldest open event) without re-heapifying.
func popBest(ready *[]item, policy Policy) item {
	rs := *ready
	oldest := -1
	if policy == Balanced {
		for _, it := range rs {
			if oldest == -1 || it.evIdx < oldest {
				oldest = it.evIdx
			}
		}
	}
	best := 0
	for i := 1; i < len(rs); i++ {
		if less(policy, oldest, rs[i], rs[best]) {
			best = i
		}
	}
	it := rs[best]
	rs[best] = rs[len(rs)-1]
	*ready = rs[:len(rs)-1]
	return it
}

// eventRun is the scheduler's per-event state.
type eventRun struct {
	idx  int
	spec Event
	tr   *dataflow.Tracker
}

// run is the shared-pool scheduler state; mu guards everything below it.
type run struct {
	policy Policy
	admit  int
	mon    *obs.SchedulerMonitor

	mu         sync.Mutex
	cond       *sync.Cond
	events     []*eventRun
	res        []Result
	ready      []item
	next       int // next un-admitted event (admission is FIFO)
	open       int // events admitted and not yet finished
	doneEvents int
	start      time.Time
}

// Run executes every event on one shared pool of opts.Workers workers and
// returns per-event results in input order.  Admission is FIFO; dispatch
// order follows opts.Policy.  Run never fails as a whole — per-event errors
// land in the corresponding Result, and the caller decides whether any is
// fatal.  Cancellation is the events' own concern: a canceled context makes
// Build and node bodies return quickly, so the fleet drains rather than
// aborts, and every Result is still populated.
func Run(events []Event, opts Options) []Result {
	res := make([]Result, len(events))
	for i := range events {
		res[i].Name = events[i].Name
	}
	if len(events) == 0 {
		return res
	}
	w := parallel.Workers(opts.Workers)
	admit := opts.Admit
	if admit <= 0 {
		admit = opts.Policy.DefaultAdmit(w)
	}
	if admit > len(events) {
		admit = len(events)
	}
	r := &run{
		policy: opts.Policy,
		admit:  admit,
		mon:    obs.NewSchedulerMonitor(opts.Observer, "fleet"),
		events: make([]*eventRun, len(events)),
		res:    res,
		start:  time.Now(),
	}
	r.cond = sync.NewCond(&r.mu)
	for i := range events {
		r.events[i] = &eventRun{idx: i, spec: events[i]}
	}
	var wg sync.WaitGroup
	wg.Add(w)
	for t := 0; t < w; t++ {
		go func(worker int) {
			defer wg.Done()
			r.worker(worker)
		}(t)
	}
	wg.Wait()
	return res
}

// admitReady admits arrivals while open slots remain.  Caller holds mu.
func (r *run) admitReady() {
	for r.next < len(r.events) && r.open < r.admit {
		ev := r.events[r.next]
		r.next++
		r.open++
		r.res[ev.idx].Admitted = time.Since(r.start)
		r.ready = append(r.ready, item{evIdx: ev.idx, build: true, pri: math.Inf(1), enq: r.res[ev.idx].Admitted})
		r.mon.Admitted()
	}
	r.mon.Admission(r.open, len(r.events)-r.next)
}

// push enqueues one runnable node of ev.  Caller holds mu.
func (r *run) push(ev *eventRun, id dataflow.NodeID) {
	r.ready = append(r.ready, item{
		evIdx:  ev.idx,
		node:   id,
		pri:    ev.tr.Priority(id),
		weight: ev.tr.Weight(id),
		enq:    time.Since(r.start),
	})
}

// worker is the pool loop: admit, pick the policy-best ready item, run it
// unlocked, fold the completion back in, and finish events whose graphs
// drained.
func (r *run) worker(id int) {
	var busy time.Duration
	tasks := 0
	joined := time.Now()
	r.mu.Lock()
	for {
		r.admitReady()
		if len(r.ready) == 0 {
			if r.doneEvents == len(r.events) {
				break
			}
			r.cond.Wait()
			continue
		}
		it := popBest(&r.ready, r.policy)
		ev := r.events[it.evIdx]
		r.mon.QueueDepth(len(r.ready))
		r.mon.Workers().TaskWait(time.Since(r.start) - it.enq)
		r.mu.Unlock()

		t0 := time.Now()
		var finished *eventRun
		var finishErr error
		if it.build {
			g, err := ev.spec.Build()
			r.mu.Lock()
			if err != nil {
				finished, finishErr = ev, err
			} else {
				ev.tr = dataflow.NewTracker(g)
				if ev.tr.Done() { // empty graph: nothing to dispatch
					finished, finishErr = ev, nil
				} else {
					for _, nid := range ev.tr.InitialReady() {
						r.push(ev, nid)
					}
				}
			}
		} else {
			err := ev.tr.Run(it.node)
			r.mu.Lock()
			rd, _ := ev.tr.Complete(it.node, err)
			for _, nid := range rd {
				r.push(ev, nid)
			}
			if ev.tr.Done() {
				finished, finishErr = ev, ev.tr.Err()
			}
		}
		if finished != nil {
			// Finish (materialization, journal close) runs unlocked on this
			// worker; the admission slot is released only after it returns,
			// so the open-events cap bounds the whole span of real work.
			r.mu.Unlock()
			if f := finished.spec.Finish; f != nil {
				finishErr = f(finishErr)
			}
			r.mu.Lock()
			d := time.Since(r.start)
			r.res[finished.idx].Done = d
			r.res[finished.idx].Err = finishErr
			r.open--
			r.doneEvents++
			r.mon.Completed(d - r.res[finished.idx].Admitted)
			r.admitReady()
		}
		busy += time.Since(t0)
		tasks++
		r.mon.QueueDepth(len(r.ready))
		r.cond.Broadcast()
	}
	r.mu.Unlock()
	idle := time.Since(joined) - busy
	if idle < 0 {
		idle = 0
	}
	r.mon.Workers().WorkerSpan(id, busy, idle, tasks)
}
