package fleet

import (
	"container/heap"
	"math"
	"time"

	"accelproc/internal/dataflow"
)

// SimEvent is one event on the simulated platform: its graph, the serially
// measured per-node costs, and the measured cost of its Build prologue.
type SimEvent struct {
	Name  string
	Graph *dataflow.Graph
	// Durs holds each node's serially measured duration, indexed by NodeID.
	Durs []time.Duration
	// Build is the cost of the event's admission-time prologue (stage I and
	// graph construction), modeled as a single task on one worker.
	Build time.Duration
}

// SimResult mirrors Result on the virtual clock.
type SimResult struct {
	Name     string
	Admitted time.Duration
	Done     time.Duration
}

// Wait returns the virtual arrival-queue wait (all events arrive at zero).
func (r SimResult) Wait() time.Duration { return r.Admitted }

// Latency returns the virtual admission-to-done latency.
func (r SimResult) Latency() time.Duration { return r.Done - r.Admitted }

// pendItem is one in-flight task in the simulator, keyed by finish time with
// (event, node) tie-breaks so simultaneous completions resolve
// deterministically.
type pendItem struct {
	fin time.Duration
	it  item
}

type pendHeap []pendItem

func (h pendHeap) Len() int { return len(h) }
func (h pendHeap) Less(i, j int) bool {
	a, b := h[i], h[j]
	if a.fin != b.fin {
		return a.fin < b.fin
	}
	if a.it.evIdx != b.it.evIdx {
		return a.it.evIdx < b.it.evIdx
	}
	return a.it.node < b.it.node
}
func (h pendHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *pendHeap) Push(x any)   { *h = append(*h, x.(pendItem)) }
func (h *pendHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Simulate runs the fleet schedule on a virtual clock: the same admission,
// policy ordering, and completion cascade as Run, but with task costs taken
// from measured durations instead of executing bodies.  Node i of an event
// costs Durs[i] scaled by the contention slowdown 1 + alpha_i*(workers-1),
// the model shared with Graph.SimMakespan, so single-event fleet makespans
// agree with the Pipelined variant's simulated platform.
//
// The schedule is deterministic: dispatch uses the policy's total order and
// simultaneous completions resolve by (event, node).  Failures are out of
// scope — the simulated platform measures the healthy path.
func Simulate(events []SimEvent, workers, admit int, policy Policy) []SimResult {
	res := make([]SimResult, len(events))
	for i := range events {
		res[i].Name = events[i].Name
	}
	if len(events) == 0 {
		return res
	}
	w := workers
	if w < 1 {
		w = 1
	}
	if admit <= 0 {
		admit = policy.DefaultAdmit(w)
	}
	if admit > len(events) {
		admit = len(events)
	}

	trs := make([]*dataflow.Tracker, len(events))
	var (
		now   time.Duration
		free  = w
		ready []item
		pend  pendHeap
		next  int
		open  int
	)
	admitFn := func() {
		for next < len(events) && open < admit {
			res[next].Admitted = now
			ready = append(ready, item{evIdx: next, build: true, pri: math.Inf(1)})
			next++
			open++
		}
	}
	cost := func(it item) time.Duration {
		if it.build {
			return events[it.evIdx].Build
		}
		d := events[it.evIdx].Durs[it.node]
		if w > 1 {
			d = time.Duration(float64(d) * (1 + trs[it.evIdx].Alpha(it.node)*float64(w-1)))
		}
		return d
	}
	pushReady := func(evIdx int, ids []dataflow.NodeID) {
		for _, id := range ids {
			ready = append(ready, item{
				evIdx:  evIdx,
				node:   id,
				pri:    trs[evIdx].Priority(id),
				weight: trs[evIdx].Weight(id),
			})
		}
	}
	for {
		admitFn()
		for free > 0 && len(ready) > 0 {
			it := popBest(&ready, policy)
			heap.Push(&pend, pendItem{fin: now + cost(it), it: it})
			free--
		}
		if pend.Len() == 0 {
			break
		}
		p := heap.Pop(&pend).(pendItem)
		now = p.fin
		free++
		it := p.it
		finished := false
		if it.build {
			trs[it.evIdx] = dataflow.NewTracker(events[it.evIdx].Graph)
			if trs[it.evIdx].Done() {
				finished = true
			} else {
				pushReady(it.evIdx, trs[it.evIdx].InitialReady())
			}
		} else {
			rd, _ := trs[it.evIdx].Complete(it.node, nil)
			pushReady(it.evIdx, rd)
			finished = trs[it.evIdx].Done()
		}
		if finished {
			res[it.evIdx].Done = now
			open--
		}
	}
	return res
}
