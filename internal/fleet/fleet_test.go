package fleet

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"accelproc/internal/dataflow"
	"accelproc/internal/obs"
)

// chainEvent returns an Event whose graph is a chain of n nodes; every node
// appends "<name>:<i>" to order under mu.
func chainEvent(name string, n int, weight float64, mu *sync.Mutex, order *[]string) Event {
	return Event{
		Name: name,
		Build: func() (*dataflow.Graph, error) {
			mu.Lock()
			*order = append(*order, name+":build")
			mu.Unlock()
			g := dataflow.New()
			var prev []dataflow.NodeID
			for i := 0; i < n; i++ {
				i := i
				id := g.Add(dataflow.Spec{
					Label:  fmt.Sprintf("%s:%d", name, i),
					Weight: weight,
					Run: func() error {
						mu.Lock()
						*order = append(*order, fmt.Sprintf("%s:%d", name, i))
						mu.Unlock()
						return nil
					},
				}, prev...)
				prev = []dataflow.NodeID{id}
			}
			return g, nil
		},
	}
}

func TestParsePolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Policy
	}{{"", Balanced}, {"balanced", Balanced}, {"latency", Latency}, {"throughput", Throughput}} {
		got, err := ParsePolicy(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParsePolicy(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
		if tc.in != "" && got.String() != tc.in {
			t.Errorf("Policy(%v).String() = %q, want %q", got, got.String(), tc.in)
		}
	}
	if _, err := ParsePolicy("bogus"); err == nil {
		t.Error("ParsePolicy(bogus) did not fail")
	}
}

func TestRunExecutesEveryEvent(t *testing.T) {
	for _, policy := range []Policy{Balanced, Latency, Throughput} {
		t.Run(policy.String(), func(t *testing.T) {
			var mu sync.Mutex
			var order []string
			var finished atomic.Int32
			events := make([]Event, 5)
			for i := range events {
				ev := chainEvent(fmt.Sprintf("ev%d", i), 3, 1, &mu, &order)
				ev.Finish = func(err error) error {
					finished.Add(1)
					return err
				}
				events[i] = ev
			}
			res := Run(events, Options{Workers: 3, Policy: policy})
			if len(res) != 5 {
				t.Fatalf("results = %d, want 5", len(res))
			}
			for i, r := range res {
				if r.Err != nil {
					t.Errorf("event %d: %v", i, r.Err)
				}
				if r.Name != fmt.Sprintf("ev%d", i) {
					t.Errorf("event %d name = %q", i, r.Name)
				}
				if r.Done < r.Admitted {
					t.Errorf("event %d Done %v < Admitted %v", i, r.Done, r.Admitted)
				}
			}
			if finished.Load() != 5 {
				t.Errorf("Finish ran %d times, want 5", finished.Load())
			}
			mu.Lock()
			n := len(order)
			mu.Unlock()
			if n != 5*4 { // build + 3 nodes per event
				t.Errorf("executed %d units, want 20", n)
			}
		})
	}
}

// TestRunPolicyScheduleSingleWorker pins the full dispatch order at one
// worker for each policy, twice, so the scheduler's total order is both the
// documented one and reproducible.
func TestRunPolicyScheduleSingleWorker(t *testing.T) {
	build := func(policy Policy) []string {
		var mu sync.Mutex
		var order []string
		events := []Event{
			chainEvent("a", 2, 1, &mu, &order), // light
			chainEvent("b", 2, 5, &mu, &order), // heavy: higher critical path
		}
		Run(events, Options{Workers: 1, Admit: 2, Policy: policy})
		return order
	}
	want := map[Policy][]string{
		// Oldest event first, to completion, before the next build runs.
		Latency: {"a:build", "a:0", "a:1", "b:build", "b:0", "b:1"},
		// Builds drain first (infinite priority), then the merged ready set
		// critical-path-first: b's chain outweighs a's.
		Throughput: {"a:build", "b:build", "b:0", "b:1", "a:0", "a:1"},
		// The oldest open event is protected even against heavier siblings.
		Balanced: {"a:build", "a:0", "a:1", "b:build", "b:0", "b:1"},
	}
	for policy, w := range want {
		first := build(policy)
		if !reflect.DeepEqual(first, w) {
			t.Errorf("%v schedule = %v, want %v", policy, first, w)
		}
		if again := build(policy); !reflect.DeepEqual(again, first) {
			t.Errorf("%v schedule not reproducible: %v then %v", policy, first, again)
		}
	}
}

func TestRunAdmissionCap(t *testing.T) {
	var open, maxOpen atomic.Int32
	events := make([]Event, 6)
	for i := range events {
		name := fmt.Sprintf("ev%d", i)
		events[i] = Event{
			Name: name,
			Build: func() (*dataflow.Graph, error) {
				if o := open.Add(1); o > maxOpen.Load() {
					maxOpen.Store(o)
				}
				g := dataflow.New()
				g.Add(dataflow.Spec{Label: name, Weight: 1, Run: func() error {
					time.Sleep(time.Millisecond)
					return nil
				}})
				return g, nil
			},
			Finish: func(err error) error {
				open.Add(-1)
				return err
			},
		}
	}
	Run(events, Options{Workers: 4, Admit: 2, Policy: Throughput})
	if m := maxOpen.Load(); m > 2 {
		t.Fatalf("max concurrently-open events = %d, want <= 2", m)
	}
}

func TestRunBuildFailureIsPerEvent(t *testing.T) {
	boom := errors.New("prologue failed")
	var mu sync.Mutex
	var order []string
	events := []Event{
		{Name: "bad", Build: func() (*dataflow.Graph, error) { return nil, boom }},
		chainEvent("good", 2, 1, &mu, &order),
	}
	res := Run(events, Options{Workers: 2})
	if !errors.Is(res[0].Err, boom) {
		t.Errorf("bad event Err = %v, want boom", res[0].Err)
	}
	if res[1].Err != nil {
		t.Errorf("good event Err = %v, want nil", res[1].Err)
	}
}

func TestRunNodeFailureReachesFinish(t *testing.T) {
	boom := errors.New("node failed")
	var got error
	ev := Event{
		Name: "ev",
		Build: func() (*dataflow.Graph, error) {
			g := dataflow.New()
			a := g.Add(dataflow.Spec{Label: "a", Weight: 1, Run: func() error { return boom }})
			g.Add(dataflow.Spec{Label: "b", Weight: 1, Run: func() error {
				t.Error("dependent of failed node ran")
				return nil
			}}, a)
			return g, nil
		},
		Finish: func(err error) error {
			got = err
			return fmt.Errorf("wrapped: %w", err)
		},
	}
	res := Run([]Event{ev}, Options{Workers: 2})
	if !errors.Is(got, boom) {
		t.Errorf("Finish received %v, want boom", got)
	}
	if res[0].Err == nil || !errors.Is(res[0].Err, boom) || !strings.Contains(res[0].Err.Error(), "wrapped") {
		t.Errorf("Result.Err = %v, want wrapped boom", res[0].Err)
	}
}

func TestRunEmptyGraphEvent(t *testing.T) {
	res := Run([]Event{{
		Name:  "empty",
		Build: func() (*dataflow.Graph, error) { return dataflow.New(), nil },
	}}, Options{Workers: 2})
	if res[0].Err != nil {
		t.Fatalf("empty-graph event Err = %v", res[0].Err)
	}
}

func TestRunRegistersSchedulerMetrics(t *testing.T) {
	o := obs.New()
	var mu sync.Mutex
	var order []string
	Run([]Event{chainEvent("ev", 3, 1, &mu, &order)}, Options{Workers: 2, Observer: o})
	var sb strings.Builder
	o.WritePrometheus(&sb)
	text := sb.String()
	for _, m := range []string{"fleet_events_admitted_total 1", "fleet_events_completed_total 1", "fleet_worker_tasks_total"} {
		if !strings.Contains(text, m) {
			t.Errorf("metrics missing %q", m)
		}
	}
}

// simChainEvents builds n identical SimEvents, each a fan-out of width
// parallel nodes costing dur, with a build prologue.
func simChainEvents(n, width int, dur, build time.Duration) []SimEvent {
	events := make([]SimEvent, n)
	for i := range events {
		g := dataflow.New()
		durs := make([]time.Duration, width)
		for j := 0; j < width; j++ {
			g.Add(dataflow.Spec{Label: fmt.Sprintf("n%d", j), Weight: 1, Run: func() error { return nil }})
			durs[j] = dur
		}
		events[i] = SimEvent{Name: fmt.Sprintf("ev%d", i), Graph: g, Durs: durs, Build: build}
	}
	return events
}

func simMakespan(res []SimResult) time.Duration {
	var m time.Duration
	for _, r := range res {
		if r.Done > m {
			m = r.Done
		}
	}
	return m
}

// TestSimulateSingleEventMatchesSimMakespan ties the fleet simulator to the
// established single-graph model: with one event and no build cost, the
// fleet virtual makespan equals Graph.SimMakespan.
func TestSimulateSingleEventMatchesSimMakespan(t *testing.T) {
	g := dataflow.New()
	durs := []time.Duration{8 * time.Millisecond, 6 * time.Millisecond, 4 * time.Millisecond, 2 * time.Millisecond}
	for i, d := range durs {
		g.Add(dataflow.Spec{Label: fmt.Sprintf("n%d", i), Weight: d.Seconds(), Run: func() error { return nil }})
	}
	want := g.SimMakespan(durs, 2)
	res := Simulate([]SimEvent{{Name: "ev", Graph: g, Durs: durs}}, 2, 1, Throughput)
	if got := res[0].Done; got != want {
		t.Fatalf("fleet sim makespan %v != SimMakespan %v", got, want)
	}
}

// TestSimulatePolicyTradeoff pins the bi-criteria behavior the policies
// exist for: throughput packs the pool and finishes the queue sooner, while
// latency keeps every event's admission-to-done latency at the single-event
// optimum.
func TestSimulatePolicyTradeoff(t *testing.T) {
	const workers = 4
	events := simChainEvents(8, workers, 10*time.Millisecond, time.Millisecond)
	single := simMakespan(Simulate(events[:1], workers, 1, Latency))

	lat := Simulate(events, workers, 0, Latency)
	thr := Simulate(events, workers, 0, Throughput)
	bal := Simulate(events, workers, 0, Balanced)

	if m := simMakespan(thr); m >= simMakespan(lat) {
		t.Errorf("throughput makespan %v not below latency makespan %v", m, simMakespan(lat))
	}
	for i, r := range lat {
		if r.Latency() != single {
			t.Errorf("latency policy event %d latency %v != single-event makespan %v", i, r.Latency(), single)
		}
	}
	if m := simMakespan(bal); m > simMakespan(lat) {
		t.Errorf("balanced makespan %v exceeds latency makespan %v", m, simMakespan(lat))
	}
	// Deterministic replay.
	if again := Simulate(events, workers, 0, Throughput); !reflect.DeepEqual(again, thr) {
		t.Error("Simulate not deterministic")
	}
}
