package smformat

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"accelproc/internal/seismic"
)

// Failure injection: every parser must reject corrupted inputs with an
// error rather than panicking or returning garbage.

func TestParsersRejectEmptyAndForeignInput(t *testing.T) {
	inputs := []string{
		"",
		"\n",
		"GARBAGE HEADER\nmore garbage\n",
		"STRONG-MOTION UNCORRECTED RECORD V99\n",
	}
	for _, in := range inputs {
		if _, err := ParseV1(strings.NewReader(in)); err == nil {
			t.Errorf("ParseV1 accepted %q", in)
		}
		if _, err := ParseV1Component(strings.NewReader(in)); err == nil {
			t.Errorf("ParseV1Component accepted %q", in)
		}
		if _, err := ParseV2(strings.NewReader(in)); err == nil {
			t.Errorf("ParseV2 accepted %q", in)
		}
		if _, err := ParseFourier(strings.NewReader(in)); err == nil {
			t.Errorf("ParseFourier accepted %q", in)
		}
		if _, err := ParseResponse(strings.NewReader(in)); err == nil {
			t.Errorf("ParseResponse accepted %q", in)
		}
		if _, err := ParseGEM(strings.NewReader(in)); err == nil {
			t.Errorf("ParseGEM accepted %q", in)
		}
		if _, err := ParseFileList(strings.NewReader(in)); err == nil {
			t.Errorf("ParseFileList accepted %q", in)
		}
		if _, err := ParseFilterParams(strings.NewReader(in)); err == nil {
			t.Errorf("ParseFilterParams accepted %q", in)
		}
		if _, err := ParseMaxValues(strings.NewReader(in)); err == nil {
			t.Errorf("ParseMaxValues accepted %q", in)
		}
	}
}

// mutateLines returns variants of the serialized form with one line each
// truncated, to exercise mid-file corruption handling.
func truncations(data []byte) [][]byte {
	lines := bytes.Split(data, []byte("\n"))
	var out [][]byte
	step := len(lines)/8 + 1
	for i := 1; i < len(lines); i += step {
		out = append(out, bytes.Join(lines[:i], []byte("\n")))
	}
	return out
}

func TestV1ParserRejectsTruncation(t *testing.T) {
	v := sampleV1(rand.New(rand.NewSource(3)))
	var buf bytes.Buffer
	if err := v.Write(&buf); err != nil {
		t.Fatal(err)
	}
	for i, tr := range truncations(buf.Bytes()) {
		if _, err := ParseV1(bytes.NewReader(tr)); err == nil {
			t.Errorf("truncation %d accepted", i)
		}
	}
}

func TestV2ParserRejectsTruncation(t *testing.T) {
	v := sampleV2(rand.New(rand.NewSource(4)))
	var buf bytes.Buffer
	if err := v.Write(&buf); err != nil {
		t.Fatal(err)
	}
	for i, tr := range truncations(buf.Bytes()) {
		if _, err := ParseV2(bytes.NewReader(tr)); err == nil {
			t.Errorf("truncation %d accepted", i)
		}
	}
}

func TestResponseParserRejectsTruncation(t *testing.T) {
	v := sampleResponse(rand.New(rand.NewSource(5)))
	var buf bytes.Buffer
	if err := v.Write(&buf); err != nil {
		t.Fatal(err)
	}
	for i, tr := range truncations(buf.Bytes()) {
		if _, err := ParseResponse(bytes.NewReader(tr)); err == nil {
			t.Errorf("truncation %d accepted", i)
		}
	}
}

func TestParserRejectsNonNumericPayload(t *testing.T) {
	v := sampleV1(rand.New(rand.NewSource(6)))
	var buf bytes.Buffer
	if err := v.Write(&buf); err != nil {
		t.Fatal(err)
	}
	// Replace the first numeric payload character we find after the headers.
	data := buf.String()
	idx := strings.Index(data, "COMPONENT: longitudinal\n")
	if idx < 0 {
		t.Fatal("component header not found")
	}
	corrupted := data[:idx+len("COMPONENT: longitudinal\n")] + "NOT_A_NUMBER " + data[idx+len("COMPONENT: longitudinal\n")+13:]
	if _, err := ParseV1(strings.NewReader(corrupted)); err == nil {
		t.Error("non-numeric payload accepted")
	}
}

func TestParserRejectsBadCounts(t *testing.T) {
	cases := []string{
		"STRONG-MOTION UNCORRECTED RECORD V1\nSTATION: A\nDT: 0.01\nNPTS: 0\nUNITS: gal\n",
		"STRONG-MOTION UNCORRECTED RECORD V1\nSTATION: A\nDT: 0.01\nNPTS: -5\nUNITS: gal\n",
		"STRONG-MOTION UNCORRECTED RECORD V1\nSTATION: A\nDT: 0.01\nNPTS: xyz\nUNITS: gal\n",
	}
	for i, in := range cases {
		if _, err := ParseV1(strings.NewReader(in)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestParseFilterParamsRejectsDuplicates(t *testing.T) {
	in := "FILTER PARAMETERS\n" +
		"DEFAULT - 1e-01 2.5e-01 2.3e+01 2.5e+01\n" +
		"NSIGNALS: 2\n" +
		"A l 1e-01 2.5e-01 2.3e+01 2.5e+01\n" +
		"A l 2e-01 3.5e-01 2.3e+01 2.5e+01\n"
	if _, err := ParseFilterParams(strings.NewReader(in)); err == nil {
		t.Error("duplicate signal entries accepted")
	}
}

func TestParseMaxValuesRejectsMalformedLines(t *testing.T) {
	in := "MAX VALUES\nNSIGNALS: 1\nA l 1 2 3\n" // 5 fields, want 8
	if _, err := ParseMaxValues(strings.NewReader(in)); err == nil {
		t.Error("short max-values line accepted")
	}
	in = "MAX VALUES\nNSIGNALS: 1\nA q 1 2 3 4 5 6\n" // bad component
	if _, err := ParseMaxValues(strings.NewReader(in)); err == nil {
		t.Error("bad component accepted")
	}
}

func TestWriteRejectsInvalidStructs(t *testing.T) {
	var buf bytes.Buffer
	if err := (V1{}).Write(&buf); err == nil {
		t.Error("zero V1 accepted")
	}
	if err := (V2{Station: "A", DT: 0.01, Accel: []float64{1}, Vel: []float64{1}}).Write(&buf); err == nil {
		t.Error("V2 with missing disp accepted")
	}
	if err := (Response{Station: "A", Damping: 0.05, Periods: []float64{2, 1}, SA: []float64{1, 1}, SV: []float64{1, 1}, SD: []float64{1, 1}}).Write(&buf); err == nil {
		t.Error("non-monotonic periods accepted")
	}
	if err := (GEM{Station: "A", Kind: 'X', Quantity: 'A', Abscissa: []float64{1}, Values: []float64{1}}).Write(&buf); err == nil {
		t.Error("bad GEM kind accepted")
	}
	if err := (Fourier{Station: "A", DF: -1, Accel: []float64{1}, Vel: []float64{1}, Disp: []float64{1}}).Write(&buf); err == nil {
		t.Error("negative DF accepted")
	}
}

func TestFileHelpersRoundTrip(t *testing.T) {
	dir := t.TempDir()
	v := sampleV1(rand.New(rand.NewSource(11)))
	path := filepath.Join(dir, V1FileName(v.Station))
	if err := WriteV1File(path, v); err != nil {
		t.Fatal(err)
	}
	got, err := ReadV1File(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Station != v.Station || len(got.Accel[0]) != len(v.Accel[0]) {
		t.Errorf("file round trip mismatch")
	}
}

func TestReadFileErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := ReadV1File(filepath.Join(dir, "missing.v1")); err == nil {
		t.Error("missing file accepted")
	}
	bad := filepath.Join(dir, "bad.v1")
	if err := os.WriteFile(bad, []byte("not a v1 file"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadV1File(bad); err == nil {
		t.Error("garbage file accepted")
	}
}

func TestWriteFileToUnwritableDir(t *testing.T) {
	v := sampleV1(rand.New(rand.NewSource(12)))
	err := WriteV1File(filepath.Join(t.TempDir(), "no", "such", "dir", "x.v1"), v)
	if err == nil {
		t.Error("write into missing directory succeeded")
	}
}

func TestCanonicalFileNames(t *testing.T) {
	if got := V1FileName("SS01"); got != "SS01.v1" {
		t.Errorf("V1FileName = %q", got)
	}
	if got := V1ComponentFileName("SS01", seismic.Transversal); got != "SS01t.v1" {
		t.Errorf("V1ComponentFileName = %q", got)
	}
	if got := V2FileName("SS01", seismic.Vertical); got != "SS01v.v2" {
		t.Errorf("V2FileName = %q", got)
	}
	if got := FourierFileName("SS01", seismic.Longitudinal); got != "SS01l.f" {
		t.Errorf("FourierFileName = %q", got)
	}
	if got := ResponseFileName("SS01", seismic.Longitudinal); got != "SS01l.r" {
		t.Errorf("ResponseFileName = %q", got)
	}
	if got := AccelPlotFileName("SS01"); got != "SS01.ps" {
		t.Errorf("AccelPlotFileName = %q", got)
	}
	if got := FourierPlotFileName("SS01"); got != "SS01f.ps" {
		t.Errorf("FourierPlotFileName = %q", got)
	}
	if got := ResponsePlotFileName("SS01"); got != "SS01r.ps" {
		t.Errorf("ResponsePlotFileName = %q", got)
	}
}
