package smformat

import (
	"bytes"
	"math/rand"
	"testing"
)

// Fuzz targets for the two formats with the most structural variety: the
// multiplexed V1 record (multi-block payload) and the GEM export (two-column
// payload with a packed header).  The property is canonical-form stability:
// any input the parser accepts must re-encode, and the canonical bytes must
// be a fixed point of decode∘encode.  Corrupt inputs must produce an error,
// never a panic — the corpus seeds come from the corruption cases of
// corrupt_test.go.

func fuzzSeedV1() []byte {
	v := sampleV1(rand.New(rand.NewSource(21)))
	var buf bytes.Buffer
	if err := v.Write(&buf); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

func fuzzSeedGEM() []byte {
	g := sampleGEM(rand.New(rand.NewSource(22)))
	var buf bytes.Buffer
	if err := g.Write(&buf); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

func FuzzV1RoundTrip(f *testing.F) {
	valid := fuzzSeedV1()
	f.Add(valid)
	f.Add([]byte(""))
	f.Add([]byte("\n"))
	f.Add([]byte("GARBAGE HEADER\nmore garbage\n"))
	f.Add([]byte("STRONG-MOTION UNCORRECTED RECORD V99\n"))
	f.Add([]byte("STRONG-MOTION UNCORRECTED RECORD V1\nSTATION: A\nDT: 0.01\nNPTS: 0\nUNITS: gal\n"))
	f.Add([]byte("STRONG-MOTION UNCORRECTED RECORD V1\nSTATION: A\nDT: 0.01\nNPTS: xyz\nUNITS: gal\n"))
	for _, tr := range truncations(valid) {
		f.Add(tr)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		v, err := ParseV1(bytes.NewReader(data))
		if err != nil {
			return // rejected without panicking: fine
		}
		var b1 bytes.Buffer
		if err := v.Write(&b1); err != nil {
			t.Fatalf("accepted V1 failed to re-encode: %v", err)
		}
		v2, err := ParseV1(bytes.NewReader(b1.Bytes()))
		if err != nil {
			t.Fatalf("canonical V1 form rejected: %v", err)
		}
		var b2 bytes.Buffer
		if err := v2.Write(&b2); err != nil {
			t.Fatalf("re-parsed V1 failed to encode: %v", err)
		}
		if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
			t.Fatalf("V1 round trip is not a fixed point:\n%q\nvs\n%q", b1.Bytes(), b2.Bytes())
		}
	})
}

func FuzzGEMRoundTrip(f *testing.F) {
	valid := fuzzSeedGEM()
	f.Add(valid)
	f.Add([]byte(""))
	f.Add([]byte("\n"))
	f.Add([]byte("GARBAGE HEADER\nmore garbage\n"))
	f.Add([]byte("GEM EXPORT SS01 l X A\nNROWS: 1\n0 1\n"))
	f.Add([]byte("GEM EXPORT SS01 l 2 A\nNROWS: 3\n0 1\n"))
	f.Add([]byte("GEM EXPORT SS01 l 2 A\nNROWS: 1\n0 1 2\n"))
	for _, tr := range truncations(valid) {
		f.Add(tr)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ParseGEM(bytes.NewReader(data))
		if err != nil {
			return
		}
		var b1 bytes.Buffer
		if err := g.Write(&b1); err != nil {
			t.Fatalf("accepted GEM failed to re-encode: %v", err)
		}
		g2, err := ParseGEM(bytes.NewReader(b1.Bytes()))
		if err != nil {
			t.Fatalf("canonical GEM form rejected: %v", err)
		}
		var b2 bytes.Buffer
		if err := g2.Write(&b2); err != nil {
			t.Fatalf("re-parsed GEM failed to encode: %v", err)
		}
		if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
			t.Fatalf("GEM round trip is not a fixed point:\n%q\nvs\n%q", b1.Bytes(), b2.Bytes())
		}
	})
}
