package smformat

import (
	"bytes"
	"math/rand"
	"testing"

	"accelproc/internal/dsp"
	"accelproc/internal/seismic"
)

// dspSpec aliases the band-pass spec type for test-map brevity.
type dspSpec = dsp.BandPassSpec

// Mutation robustness: random single-byte corruptions of valid files must
// never panic a parser — every outcome is either an error or a struct that
// passes validation (a mutation inside a numeric literal can silently
// change a value without breaking the format, which is acceptable).

func mutate(data []byte, rng *rand.Rand) []byte {
	out := append([]byte(nil), data...)
	n := 1 + rng.Intn(3)
	for i := 0; i < n; i++ {
		pos := rng.Intn(len(out))
		switch rng.Intn(3) {
		case 0:
			out[pos] = byte(rng.Intn(256))
		case 1: // delete a byte
			out = append(out[:pos], out[pos+1:]...)
		case 2: // duplicate a byte
			out = append(out[:pos], append([]byte{out[pos]}, out[pos:]...)...)
		}
		if len(out) == 0 {
			return out
		}
	}
	return out
}

func TestParsersSurviveRandomMutations(t *testing.T) {
	rng := rand.New(rand.NewSource(99))

	var v1Buf, v2Buf, fBuf, rBuf, gemBuf bytes.Buffer
	if err := sampleV1(rng).Write(&v1Buf); err != nil {
		t.Fatal(err)
	}
	if err := sampleV2(rng).Write(&v2Buf); err != nil {
		t.Fatal(err)
	}
	if err := sampleFourier(rng).Write(&fBuf); err != nil {
		t.Fatal(err)
	}
	if err := sampleResponse(rng).Write(&rBuf); err != nil {
		t.Fatal(err)
	}
	if err := sampleGEM(rng).Write(&gemBuf); err != nil {
		t.Fatal(err)
	}

	type target struct {
		name  string
		data  []byte
		parse func([]byte) error
	}
	targets := []target{
		{"v1", v1Buf.Bytes(), func(b []byte) error { _, err := ParseV1(bytes.NewReader(b)); return err }},
		{"v2", v2Buf.Bytes(), func(b []byte) error { _, err := ParseV2(bytes.NewReader(b)); return err }},
		{"fourier", fBuf.Bytes(), func(b []byte) error { _, err := ParseFourier(bytes.NewReader(b)); return err }},
		{"response", rBuf.Bytes(), func(b []byte) error { _, err := ParseResponse(bytes.NewReader(b)); return err }},
		{"gem", gemBuf.Bytes(), func(b []byte) error { _, err := ParseGEM(bytes.NewReader(b)); return err }},
	}
	const rounds = 300
	for _, tg := range targets {
		tg := tg
		t.Run(tg.name, func(t *testing.T) {
			for i := 0; i < rounds; i++ {
				m := mutate(tg.data, rng)
				func() {
					defer func() {
						if r := recover(); r != nil {
							t.Fatalf("round %d: parser panicked: %v", i, r)
						}
					}()
					_ = tg.parse(m) // error or success both fine; no panic
				}()
			}
		})
	}
}

func TestMetadataParsersSurviveRandomMutations(t *testing.T) {
	rng := rand.New(rand.NewSource(100))
	var flBuf, fpBuf, mvBuf bytes.Buffer
	if err := (FileList{Name: "v1list", Files: []string{"a.v1", "b.v1"}}).Write(&flBuf); err != nil {
		t.Fatal(err)
	}
	v2 := sampleV2(rng)
	params := FilterParams{
		Default: v2.Filter,
		PerSignal: map[SignalKey]dspSpec{
			{Station: "A", Component: seismic.Longitudinal}: v2.Filter,
		},
	}
	if err := params.Write(&fpBuf); err != nil {
		t.Fatal(err)
	}
	max := MaxValues{Peaks: map[SignalKey]seismic.PeakValues{
		{Station: "A", Component: seismic.Longitudinal}: v2.Peaks,
		{Station: "B", Component: seismic.Vertical}:     v2.Peaks,
	}}
	if err := max.Write(&mvBuf); err != nil {
		t.Fatal(err)
	}

	type target struct {
		name  string
		data  []byte
		parse func([]byte) error
	}
	targets := []target{
		{"filelist", flBuf.Bytes(), func(b []byte) error { _, err := ParseFileList(bytes.NewReader(b)); return err }},
		{"filterparams", fpBuf.Bytes(), func(b []byte) error { _, err := ParseFilterParams(bytes.NewReader(b)); return err }},
		{"maxvalues", mvBuf.Bytes(), func(b []byte) error { _, err := ParseMaxValues(bytes.NewReader(b)); return err }},
	}
	for _, tg := range targets {
		tg := tg
		t.Run(tg.name, func(t *testing.T) {
			for i := 0; i < 300; i++ {
				m := mutate(tg.data, rng)
				func() {
					defer func() {
						if r := recover(); r != nil {
							t.Fatalf("round %d: parser panicked: %v", i, r)
						}
					}()
					_ = tg.parse(m)
				}()
			}
		})
	}
}
