package smformat

import (
	"bytes"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"accelproc/internal/dsp"
	"accelproc/internal/seismic"
)

func randData(rng *rand.Rand, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(7)-3))
	}
	return out
}

func sampleV1(rng *rand.Rand) V1 {
	n := rng.Intn(50) + 1
	return V1{
		Station: "SS01",
		DT:      0.01,
		Accel:   [3][]float64{randData(rng, n), randData(rng, n), randData(rng, n)},
	}
}

func sampleV2(rng *rand.Rand) V2 {
	n := rng.Intn(50) + 1
	return V2{
		Station:   "SS02",
		Component: seismic.Transversal,
		DT:        0.005,
		Filter:    dsp.BandPassSpec{FSL: 0.1, FPL: 0.25, FPH: 23, FSH: 25},
		Peaks: seismic.PeakValues{
			PGA: 123.4, TimePGA: 1.2, PGV: 5.6, TimePGV: 2.3, PGD: 0.7, TimePGD: 3.4,
		},
		Accel: randData(rng, n),
		Vel:   randData(rng, n),
		Disp:  randData(rng, n),
	}
}

func sampleFourier(rng *rand.Rand) Fourier {
	n := rng.Intn(50) + 1
	return Fourier{
		Station:   "SS03",
		Component: seismic.Vertical,
		DF:        0.0122,
		Accel:     randData(rng, n),
		Vel:       randData(rng, n),
		Disp:      randData(rng, n),
	}
}

func sampleResponse(rng *rand.Rand) Response {
	n := rng.Intn(50) + 1
	periods := make([]float64, n)
	for i := range periods {
		periods[i] = 0.02 * math.Pow(1.1, float64(i))
	}
	return Response{
		Station:   "SS04",
		Component: seismic.Longitudinal,
		Damping:   0.05,
		Periods:   periods,
		SA:        randData(rng, n),
		SV:        randData(rng, n),
		SD:        randData(rng, n),
	}
}

func sampleGEM(rng *rand.Rand) GEM {
	n := rng.Intn(50) + 1
	t := make([]float64, n)
	for i := range t {
		t[i] = float64(i) * 0.01
	}
	return GEM{
		Station:   "SS05",
		Component: seismic.Longitudinal,
		Kind:      GEMFromV2,
		Quantity:  GEMVelocity,
		Abscissa:  t,
		Values:    randData(rng, n),
	}
}

// Exact round-trips: write then parse must reproduce the struct bit for bit.

func TestV1RoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		v := sampleV1(rand.New(rand.NewSource(seed)))
		var buf bytes.Buffer
		if err := v.Write(&buf); err != nil {
			return false
		}
		got, err := ParseV1(&buf)
		return err == nil && reflect.DeepEqual(got, v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestV1ComponentRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		v := V1Component{
			Station:   "XY99",
			Component: seismic.Components[rng.Intn(3)],
			DT:        0.02,
			Accel:     randData(rng, rng.Intn(80)+1),
		}
		var buf bytes.Buffer
		if err := v.Write(&buf); err != nil {
			return false
		}
		got, err := ParseV1Component(&buf)
		return err == nil && reflect.DeepEqual(got, v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestV2RoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		v := sampleV2(rand.New(rand.NewSource(seed)))
		var buf bytes.Buffer
		if err := v.Write(&buf); err != nil {
			return false
		}
		got, err := ParseV2(&buf)
		return err == nil && reflect.DeepEqual(got, v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestFourierRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		v := sampleFourier(rand.New(rand.NewSource(seed)))
		var buf bytes.Buffer
		if err := v.Write(&buf); err != nil {
			return false
		}
		got, err := ParseFourier(&buf)
		return err == nil && reflect.DeepEqual(got, v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestResponseRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		v := sampleResponse(rand.New(rand.NewSource(seed)))
		var buf bytes.Buffer
		if err := v.Write(&buf); err != nil {
			return false
		}
		got, err := ParseResponse(&buf)
		return err == nil && reflect.DeepEqual(got, v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestGEMRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		v := sampleGEM(rand.New(rand.NewSource(seed)))
		var buf bytes.Buffer
		if err := v.Write(&buf); err != nil {
			return false
		}
		got, err := ParseGEM(&buf)
		return err == nil && reflect.DeepEqual(got, v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestFilterParamsRoundTrip(t *testing.T) {
	p := FilterParams{
		Default: dsp.BandPassSpec{FSL: 0.1, FPL: 0.25, FPH: 23, FSH: 25},
		PerSignal: map[SignalKey]dsp.BandPassSpec{
			{Station: "B", Component: seismic.Vertical}:     {FSL: 0.2, FPL: 0.4, FPH: 20, FSH: 22},
			{Station: "A", Component: seismic.Longitudinal}: {FSL: 0.15, FPL: 0.3, FPH: 21, FSH: 24},
			{Station: "A", Component: seismic.Transversal}:  {FSL: 0.12, FPL: 0.26, FPH: 22, FSH: 25},
		},
	}
	var buf bytes.Buffer
	if err := p.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ParseFilterParams(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, p) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, p)
	}
	// Deterministic output: writing twice yields identical bytes.
	var buf2 bytes.Buffer
	if err := p.Write(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("FilterParams.Write is not deterministic")
	}
}

func TestFilterParamsSpecLookup(t *testing.T) {
	def := dsp.BandPassSpec{FSL: 0.1, FPL: 0.25, FPH: 23, FSH: 25}
	special := dsp.BandPassSpec{FSL: 0.3, FPL: 0.5, FPH: 20, FSH: 22}
	p := FilterParams{
		Default: def,
		PerSignal: map[SignalKey]dsp.BandPassSpec{
			{Station: "A", Component: seismic.Vertical}: special,
		},
	}
	if got := p.Spec(SignalKey{Station: "A", Component: seismic.Vertical}); got != special {
		t.Errorf("per-signal lookup = %+v, want %+v", got, special)
	}
	if got := p.Spec(SignalKey{Station: "Z", Component: seismic.Vertical}); got != def {
		t.Errorf("default lookup = %+v, want %+v", got, def)
	}
}

func TestFileListRoundTrip(t *testing.T) {
	l := FileList{Name: "v1list", Files: []string{"SS01.v1", "SS02.v1", "SS03.v1"}}
	var buf bytes.Buffer
	if err := l.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ParseFileList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, l) {
		t.Errorf("round trip mismatch: got %+v, want %+v", got, l)
	}
}

func TestFileListEmpty(t *testing.T) {
	l := FileList{Name: "empty"}
	var buf bytes.Buffer
	if err := l.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ParseFileList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "empty" || len(got.Files) != 0 {
		t.Errorf("got %+v", got)
	}
}

func TestFileListRejectsBadNames(t *testing.T) {
	var buf bytes.Buffer
	if err := (FileList{Name: "has space"}).Write(&buf); err == nil {
		t.Error("name with space accepted")
	}
	if err := (FileList{Name: ""}).Write(&buf); err == nil {
		t.Error("empty name accepted")
	}
	if err := (FileList{Name: "ok", Files: []string{"a\nb"}}).Write(&buf); err == nil {
		t.Error("file name with newline accepted")
	}
	if err := (FileList{Name: "ok", Files: []string{""}}).Write(&buf); err == nil {
		t.Error("empty file name accepted")
	}
}

func TestMaxValuesRoundTrip(t *testing.T) {
	m := MaxValues{Peaks: map[SignalKey]seismic.PeakValues{
		{Station: "A", Component: seismic.Longitudinal}: {PGA: 1, TimePGA: 2, PGV: 3, TimePGV: 4, PGD: 5, TimePGD: 6},
		{Station: "B", Component: seismic.Transversal}:  {PGA: 0.1, TimePGA: 0.2, PGV: 0.3, TimePGV: 0.4, PGD: 0.5, TimePGD: 0.6},
	}}
	var buf bytes.Buffer
	if err := m.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ParseMaxValues(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Errorf("round trip mismatch: got %+v, want %+v", got, m)
	}
}

func TestGEMFileNames(t *testing.T) {
	got := GEMFileName("SS01", seismic.Longitudinal, GEMFromV2, GEMAcceleration)
	if got != "SS01lGEM2A.txt" {
		t.Errorf("name = %q, want SS01lGEM2A.txt", got)
	}
	got = GEMFileName("X", seismic.Vertical, GEMFromR, GEMDisplacement)
	if got != "XvGEMRD.txt" {
		t.Errorf("name = %q, want XvGEMRD.txt", got)
	}
}

func TestSplitV2(t *testing.T) {
	v := sampleV2(rand.New(rand.NewSource(9)))
	gems, err := SplitV2(v)
	if err != nil {
		t.Fatal(err)
	}
	wantQ := []GEMQuantity{GEMAcceleration, GEMVelocity, GEMDisplacement}
	wantVals := [][]float64{v.Accel, v.Vel, v.Disp}
	for i, g := range gems {
		if g.Kind != GEMFromV2 || g.Quantity != wantQ[i] {
			t.Errorf("gem %d kind/quantity = %c/%c", i, g.Kind, g.Quantity)
		}
		if !reflect.DeepEqual(g.Values, wantVals[i]) {
			t.Errorf("gem %d values mismatch", i)
		}
		if len(g.Abscissa) != len(v.Accel) {
			t.Errorf("gem %d abscissa length %d", i, len(g.Abscissa))
		}
		if err := g.Validate(); err != nil {
			t.Errorf("gem %d invalid: %v", i, err)
		}
	}
	// Time axis is i*DT.
	if gems[0].Abscissa[len(gems[0].Abscissa)-1] != float64(len(v.Accel)-1)*v.DT {
		t.Error("time axis wrong")
	}
	if _, err := SplitV2(V2{}); err == nil {
		t.Error("invalid V2 accepted")
	}
}

func TestSplitResponse(t *testing.T) {
	r := sampleResponse(rand.New(rand.NewSource(10)))
	gems, err := SplitResponse(r)
	if err != nil {
		t.Fatal(err)
	}
	for i, g := range gems {
		if g.Kind != GEMFromR {
			t.Errorf("gem %d kind = %c, want R", i, g.Kind)
		}
		if !reflect.DeepEqual(g.Abscissa, r.Periods) {
			t.Errorf("gem %d abscissa is not the period grid", i)
		}
	}
	if !reflect.DeepEqual(gems[0].Values, r.SA) || !reflect.DeepEqual(gems[1].Values, r.SV) || !reflect.DeepEqual(gems[2].Values, r.SD) {
		t.Error("quantity mapping wrong")
	}
	if _, err := SplitResponse(Response{}); err == nil {
		t.Error("invalid Response accepted")
	}
}
