package smformat

import (
	"bufio"
	"fmt"
	"io"

	"accelproc/internal/dsp"
	"accelproc/internal/seismic"
)

const v2Magic = "STRONG-MOTION CORRECTED RECORD V2"

// V2 is a corrected component record produced by the band-pass filter
// processes (#4 with default corners, #13 with corners picked from the
// Fourier analysis): baseline-corrected acceleration plus its integrated
// velocity and displacement, the filter corners used, and the peak values.
type V2 struct {
	Station   string
	Component seismic.Component
	DT        float64
	Filter    dsp.BandPassSpec
	Peaks     seismic.PeakValues
	Accel     []float64 // gal
	Vel       []float64 // cm/s
	Disp      []float64 // cm
}

// Validate checks internal consistency.
func (v V2) Validate() error {
	if v.Station == "" {
		return fmt.Errorf("smformat: V2 with empty station")
	}
	if v.DT <= 0 {
		return fmt.Errorf("smformat: V2 %s%s with non-positive DT %g", v.Station, v.Component.Suffix(), v.DT)
	}
	n := len(v.Accel)
	if n == 0 {
		return fmt.Errorf("smformat: V2 %s%s has no samples", v.Station, v.Component.Suffix())
	}
	if len(v.Vel) != n || len(v.Disp) != n {
		return fmt.Errorf("smformat: V2 %s%s trace lengths differ (acc %d, vel %d, disp %d)",
			v.Station, v.Component.Suffix(), n, len(v.Vel), len(v.Disp))
	}
	return nil
}

// Write serializes the V2 file.
func (v V2) Write(w io.Writer) error {
	if err := v.Validate(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	err := func() error {
		if _, err := fmt.Fprintln(bw, v2Magic); err != nil {
			return err
		}
		if err := writeHeader(bw, "STATION", v.Station); err != nil {
			return err
		}
		if err := writeHeader(bw, "COMPONENT", v.Component.String()); err != nil {
			return err
		}
		if err := writeHeaderFloat(bw, "DT", v.DT); err != nil {
			return err
		}
		if err := writeHeaderInt(bw, "NPTS", len(v.Accel)); err != nil {
			return err
		}
		for _, hf := range []struct {
			key string
			val float64
		}{
			{"FSL", v.Filter.FSL}, {"FPL", v.Filter.FPL},
			{"FPH", v.Filter.FPH}, {"FSH", v.Filter.FSH},
			{"PGA", v.Peaks.PGA}, {"TPGA", v.Peaks.TimePGA},
			{"PGV", v.Peaks.PGV}, {"TPGV", v.Peaks.TimePGV},
			{"PGD", v.Peaks.PGD}, {"TPGD", v.Peaks.TimePGD},
		} {
			if err := writeHeaderFloat(bw, hf.key, hf.val); err != nil {
				return err
			}
		}
		for _, block := range []struct {
			name string
			data []float64
		}{
			{"ACCELERATION", v.Accel}, {"VELOCITY", v.Vel}, {"DISPLACEMENT", v.Disp},
		} {
			if err := writeHeader(bw, "BLOCK", block.name); err != nil {
				return err
			}
			if err := writeValues(bw, block.data); err != nil {
				return err
			}
		}
		return nil
	}()
	return flush(bw, err)
}

// ParseV2 reads a V2 file.
func ParseV2(r io.Reader) (V2, error) {
	sc := newScanner(r)
	if !sc.Scan() || sc.Text() != v2Magic {
		return V2{}, fmt.Errorf("smformat: not a V2 file (missing %q)", v2Magic)
	}
	h := &headerReader{sc: sc, line: 1}
	var v V2
	var err error
	if v.Station, err = h.expect("STATION"); err != nil {
		return V2{}, err
	}
	compName, err := h.expect("COMPONENT")
	if err != nil {
		return V2{}, err
	}
	if v.Component, err = seismic.ParseComponent(compName); err != nil {
		return V2{}, err
	}
	if v.DT, err = h.expectFloat("DT"); err != nil {
		return V2{}, err
	}
	npts, err := h.expectInt("NPTS")
	if err != nil {
		return V2{}, err
	}
	if npts <= 0 {
		return V2{}, fmt.Errorf("smformat: V2 %s: NPTS %d must be positive", v.Station, npts)
	}
	for _, hf := range []struct {
		key string
		dst *float64
	}{
		{"FSL", &v.Filter.FSL}, {"FPL", &v.Filter.FPL},
		{"FPH", &v.Filter.FPH}, {"FSH", &v.Filter.FSH},
		{"PGA", &v.Peaks.PGA}, {"TPGA", &v.Peaks.TimePGA},
		{"PGV", &v.Peaks.PGV}, {"TPGV", &v.Peaks.TimePGV},
		{"PGD", &v.Peaks.PGD}, {"TPGD", &v.Peaks.TimePGD},
	} {
		if *hf.dst, err = h.expectFloat(hf.key); err != nil {
			return V2{}, err
		}
	}
	for _, block := range []struct {
		name string
		dst  *[]float64
	}{
		{"ACCELERATION", &v.Accel}, {"VELOCITY", &v.Vel}, {"DISPLACEMENT", &v.Disp},
	} {
		name, err := h.expect("BLOCK")
		if err != nil {
			return V2{}, err
		}
		if name != block.name {
			return V2{}, fmt.Errorf("smformat: V2 %s: block %q, want %q", v.Station, name, block.name)
		}
		vs := newValueScanner(sc, h.line)
		if *block.dst, err = vs.readBlock(npts); err != nil {
			return V2{}, fmt.Errorf("smformat: V2 %s%s block %s: %w", v.Station, v.Component.Suffix(), name, err)
		}
		h.line = vs.line
	}
	if err := v.Validate(); err != nil {
		return V2{}, err
	}
	return v, nil
}
