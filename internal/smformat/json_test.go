package smformat

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestV2JSONRoundTrip(t *testing.T) {
	v := sampleV2(rand.New(rand.NewSource(21)))
	var buf bytes.Buffer
	if err := ExportV2JSON(&buf, v); err != nil {
		t.Fatal(err)
	}
	got, err := ImportV2JSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Peak times are intentionally dropped from the interchange schema.
	want := v
	want.Peaks.TimePGA, want.Peaks.TimePGV, want.Peaks.TimePGD = 0, 0, 0
	if !reflect.DeepEqual(got, want) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

func TestV2JSONSchemaFields(t *testing.T) {
	v := sampleV2(rand.New(rand.NewSource(22)))
	var buf bytes.Buffer
	if err := ExportV2JSON(&buf, v); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, want := range []string{
		`"schema":"accelproc.v2/1"`, `"dt_seconds"`, `"pga_gal"`,
		`"acceleration_gal"`, `"filter_corners_hz"`,
	} {
		if !strings.Contains(s, want) {
			t.Errorf("JSON missing %q", want)
		}
	}
}

func TestImportV2JSONRejectsBadInput(t *testing.T) {
	cases := []string{
		``,
		`{`,
		`{"schema":"other/1"}`,
		`{"schema":"accelproc.v2/1","station":"A","component":"q","dt_seconds":0.01}`,
		`{"schema":"accelproc.v2/1","station":"A","component":"l","dt_seconds":0.01,"unknown_field":1}`,
		// Valid schema but inconsistent payload (missing vel/disp).
		`{"schema":"accelproc.v2/1","station":"A","component":"l","dt_seconds":0.01,` +
			`"filter_corners_hz":[0.1,0.2,23,25],"acceleration_gal":[1,2]}`,
	}
	for i, in := range cases {
		if _, err := ImportV2JSON(strings.NewReader(in)); err == nil {
			t.Errorf("case %d accepted: %s", i, in)
		}
	}
}

func TestResponseJSONRoundTrip(t *testing.T) {
	r := sampleResponse(rand.New(rand.NewSource(23)))
	var buf bytes.Buffer
	if err := ExportResponseJSON(&buf, r); err != nil {
		t.Fatal(err)
	}
	got, err := ImportResponseJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, r) {
		t.Errorf("round trip mismatch")
	}
}

func TestImportResponseJSONRejectsBadInput(t *testing.T) {
	cases := []string{
		``,
		`{"schema":"accelproc.response/2"}`,
		`{"schema":"accelproc.response/1","station":"A","component":"l","damping_ratio":0.05,` +
			`"periods_s":[2,1],"sa_gal":[1,1],"sv_cm_s":[1,1],"sd_cm":[1,1]}`, // periods not increasing
	}
	for i, in := range cases {
		if _, err := ImportResponseJSON(strings.NewReader(in)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestExportRejectsInvalidStructsJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := ExportV2JSON(&buf, V2{}); err == nil {
		t.Error("zero V2 accepted")
	}
	if err := ExportResponseJSON(&buf, Response{}); err == nil {
		t.Error("zero Response accepted")
	}
}

func TestGzipTransparency(t *testing.T) {
	dir := t.TempDir()
	v := sampleV2(rand.New(rand.NewSource(31)))
	plain := filepath.Join(dir, "x.v2")
	zipped := filepath.Join(dir, "x.v2.gz")
	if err := WriteV2File(plain, v); err != nil {
		t.Fatal(err)
	}
	if err := WriteV2File(zipped, v); err != nil {
		t.Fatal(err)
	}
	a, err := ReadV2File(plain)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ReadV2File(zipped)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("gzip round trip differs from plain")
	}
	// The archive must actually compress (these text formats shrink a lot).
	ps, err := os.Stat(plain)
	if err != nil {
		t.Fatal(err)
	}
	zs, err := os.Stat(zipped)
	if err != nil {
		t.Fatal(err)
	}
	if zs.Size() >= ps.Size() {
		t.Errorf("gz size %d >= plain size %d", zs.Size(), ps.Size())
	}
	// A truncated archive fails loudly.
	data, err := os.ReadFile(zipped)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(zipped, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadV2File(zipped); err == nil {
		t.Error("truncated gzip accepted")
	}
	// Garbage with a .gz name fails at the gzip layer.
	if err := os.WriteFile(zipped, []byte("not gzip"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadV2File(zipped); err == nil {
		t.Error("non-gzip .gz accepted")
	}
}
