package smformat

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"accelproc/internal/seismic"
)

const gemMagic = "GEM EXPORT"

// GEMKind distinguishes the source product of a GEM export file.
type GEMKind byte

const (
	// GEMFromV2 marks exports derived from a corrected time series (V2).
	GEMFromV2 GEMKind = '2'
	// GEMFromR marks exports derived from a response spectrum (R).
	GEMFromR GEMKind = 'R'
)

// GEMQuantity selects which physical quantity a GEM file carries.
type GEMQuantity byte

const (
	// GEMAcceleration is acceleration (gal) or spectral acceleration.
	GEMAcceleration GEMQuantity = 'A'
	// GEMVelocity is velocity (cm/s) or spectral velocity.
	GEMVelocity GEMQuantity = 'V'
	// GEMDisplacement is displacement (cm) or spectral displacement.
	GEMDisplacement GEMQuantity = 'D'
)

// GEM is one Global Earthquake Model export file: a two-column series
// (time or period versus value) for a single station, component, source
// product, and quantity.  Pipeline process #19 creates six of these per
// V2/R pair — 18 per station — which feed the downstream GEM toolchain.
type GEM struct {
	Station   string
	Component seismic.Component
	Kind      GEMKind
	Quantity  GEMQuantity
	Abscissa  []float64 // time (s) for V2 exports, period (s) for R exports
	Values    []float64
}

// GEMFileName returns the canonical export file name,
// e.g. "SS01lGEM2A.txt" or "SS01vGEMRD.txt".
func GEMFileName(station string, comp seismic.Component, kind GEMKind, q GEMQuantity) string {
	return fmt.Sprintf("%s%sGEM%c%c.txt", station, comp.Suffix(), kind, q)
}

// FileName returns the canonical name for this export.
func (g GEM) FileName() string {
	return GEMFileName(g.Station, g.Component, g.Kind, g.Quantity)
}

// Validate checks internal consistency.
func (g GEM) Validate() error {
	if g.Station == "" {
		return fmt.Errorf("smformat: GEM file with empty station")
	}
	if g.Kind != GEMFromV2 && g.Kind != GEMFromR {
		return fmt.Errorf("smformat: GEM %s: bad kind %q", g.Station, g.Kind)
	}
	if g.Quantity != GEMAcceleration && g.Quantity != GEMVelocity && g.Quantity != GEMDisplacement {
		return fmt.Errorf("smformat: GEM %s: bad quantity %q", g.Station, g.Quantity)
	}
	if len(g.Abscissa) == 0 {
		return fmt.Errorf("smformat: GEM %s is empty", g.Station)
	}
	if len(g.Abscissa) != len(g.Values) {
		return fmt.Errorf("smformat: GEM %s column lengths differ (%d vs %d)", g.Station, len(g.Abscissa), len(g.Values))
	}
	return nil
}

// Write serializes the GEM file as two full-precision columns.
func (g GEM) Write(w io.Writer) error {
	if err := g.Validate(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	err := func() error {
		bp := linePool.Get().(*[]byte)
		buf := (*bp)[:0]
		defer func() { *bp = buf[:0]; linePool.Put(bp) }()
		buf = append(buf, gemMagic...)
		buf = append(buf, ' ')
		buf = append(buf, g.Station...)
		buf = append(buf, ' ')
		buf = append(buf, g.Component.Suffix()...)
		buf = append(buf, ' ', byte(g.Kind), ' ', byte(g.Quantity), '\n')
		if _, err := bw.Write(buf); err != nil {
			return err
		}
		if err := writeHeaderInt(bw, "NROWS", len(g.Values)); err != nil {
			return err
		}
		for i := range g.Values {
			buf = strconv.AppendFloat(buf[:0], g.Abscissa[i], 'e', 17, 64)
			buf = append(buf, ' ')
			buf = strconv.AppendFloat(buf, g.Values[i], 'e', 17, 64)
			buf = append(buf, '\n')
			if _, err := bw.Write(buf); err != nil {
				return err
			}
		}
		return nil
	}()
	return flush(bw, err)
}

// ParseGEM reads a GEM export file.
func ParseGEM(r io.Reader) (GEM, error) {
	sc := newScanner(r)
	if !sc.Scan() {
		return GEM{}, fmt.Errorf("smformat: empty GEM file")
	}
	fields := strings.Fields(sc.Text())
	if len(fields) != 6 || fields[0]+" "+fields[1] != gemMagic {
		return GEM{}, fmt.Errorf("smformat: not a GEM file (bad header %q)", sc.Text())
	}
	var g GEM
	g.Station = fields[2]
	comp, err := seismic.ParseComponent(fields[3])
	if err != nil {
		return GEM{}, err
	}
	g.Component = comp
	if len(fields[4]) != 1 || len(fields[5]) != 1 {
		return GEM{}, fmt.Errorf("smformat: GEM %s: bad kind/quantity fields %q %q", g.Station, fields[4], fields[5])
	}
	g.Kind = GEMKind(fields[4][0])
	g.Quantity = GEMQuantity(fields[5][0])
	h := &headerReader{sc: sc, line: 1}
	nrows, err := h.expectInt("NROWS")
	if err != nil {
		return GEM{}, err
	}
	if nrows <= 0 {
		return GEM{}, fmt.Errorf("smformat: GEM %s: NROWS %d must be positive", g.Station, nrows)
	}
	// Cap the pre-allocation: a hostile NROWS header must not reserve
	// gigabytes before a single data row has been read.
	capHint := nrows
	if capHint > 1<<16 {
		capHint = 1 << 16
	}
	g.Abscissa = make([]float64, 0, capHint)
	g.Values = make([]float64, 0, capHint)
	line := h.line
	for i := 0; i < nrows; i++ {
		if !sc.Scan() {
			if err := sc.Err(); err != nil {
				return GEM{}, err
			}
			return GEM{}, fmt.Errorf("smformat: GEM %s: unexpected end of file at row %d", g.Station, i)
		}
		line++
		cols := strings.Fields(sc.Text())
		if len(cols) != 2 {
			return GEM{}, fmt.Errorf("smformat: GEM %s line %d: %d columns, want 2", g.Station, line, len(cols))
		}
		a, err := strconv.ParseFloat(cols[0], 64)
		if err != nil {
			return GEM{}, fmt.Errorf("smformat: GEM %s line %d: %v", g.Station, line, err)
		}
		v, err := strconv.ParseFloat(cols[1], 64)
		if err != nil {
			return GEM{}, fmt.Errorf("smformat: GEM %s line %d: %v", g.Station, line, err)
		}
		g.Abscissa = append(g.Abscissa, a)
		g.Values = append(g.Values, v)
	}
	if err := g.Validate(); err != nil {
		return GEM{}, err
	}
	return g, nil
}

// SplitV2 produces the three GEM exports of a corrected record (process #19
// calls this "SetDataApart" for a V2 input): acceleration, velocity, and
// displacement against time.
func SplitV2(v V2) ([3]GEM, error) {
	if err := v.Validate(); err != nil {
		return [3]GEM{}, err
	}
	t := make([]float64, len(v.Accel))
	for i := range t {
		t[i] = float64(i) * v.DT
	}
	mk := func(q GEMQuantity, vals []float64) GEM {
		return GEM{
			Station: v.Station, Component: v.Component,
			Kind: GEMFromV2, Quantity: q,
			Abscissa: t, Values: vals,
		}
	}
	return [3]GEM{
		mk(GEMAcceleration, v.Accel),
		mk(GEMVelocity, v.Vel),
		mk(GEMDisplacement, v.Disp),
	}, nil
}

// SplitResponse produces the three GEM exports of a response spectrum
// (process #19 on an R input): SA, SV, SD against period.
func SplitResponse(r Response) ([3]GEM, error) {
	if err := r.Validate(); err != nil {
		return [3]GEM{}, err
	}
	mk := func(q GEMQuantity, vals []float64) GEM {
		return GEM{
			Station: r.Station, Component: r.Component,
			Kind: GEMFromR, Quantity: q,
			Abscissa: r.Periods, Values: vals,
		}
	}
	return [3]GEM{
		mk(GEMAcceleration, r.SA),
		mk(GEMVelocity, r.SV),
		mk(GEMDisplacement, r.SD),
	}, nil
}
