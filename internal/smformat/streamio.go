package smformat

import (
	"bufio"
	"fmt"
	"io"
	"strconv"

	"accelproc/internal/dsp"
	"accelproc/internal/seismic"
)

// This file is the streaming counterpart of fsio.go: incremental writers and
// chunked readers for the large per-component products, so the streaming
// execution plane can produce and consume them without ever holding a whole
// record in memory.  Every writer emits byte-for-byte the same file as its
// batch twin (Write on a fully materialized value); tests pin the identity.

// StreamFS is the storage surface the incremental codecs need: the batch FS
// plus open-for-read and create-for-write streams.  Workspace backends
// satisfy it structurally.
type StreamFS interface {
	FS
	Open(path string) (io.ReadCloser, error)
	Create(path string) (io.WriteCloser, error)
}

// aborter is the optional discard hook of Workspace.Create writers: aborting
// removes the temp file so a partial write can never be renamed into place.
type aborter interface{ Abort() }

// abortWriter discards an in-progress created file.  Writers without an
// Abort hook are closed; their backend's rename-into-place still only
// publishes what was fully written.
func abortWriter(wc io.WriteCloser) {
	if a, ok := wc.(aborter); ok {
		a.Abort()
		return
	}
	wc.Close()
}

// StreamWritable is any format value that can serialize itself to a writer
// (all of this package's file types).
type StreamWritable interface{ Write(w io.Writer) error }

// WriteFileCreateFS serializes v to path through fsys.Create instead of a
// buffered WriteFile: the bytes stream to a temp file and rename into place
// on success, so the value never has to be double-buffered.  The emitted
// bytes are identical to writeFileFS's for non-".gz" paths.
func WriteFileCreateFS(fsys StreamFS, path string, v StreamWritable) error {
	wc, err := fsys.Create(path)
	if err != nil {
		return fmt.Errorf("smformat: write %s: %w", path, err)
	}
	if err := v.Write(wc); err != nil {
		abortWriter(wc)
		return fmt.Errorf("smformat: write %s: %w", path, err)
	}
	if err := wc.Close(); err != nil {
		return fmt.Errorf("smformat: write %s: %w", path, err)
	}
	return nil
}

// valueBlockWriter emits one payload block incrementally with writeValues'
// exact layout: valuesPerLine samples per row, full float64 scientific
// notation, final newline on the block's last value.
type valueBlockWriter struct {
	w   *bufio.Writer
	n   int // block length, fixed up front
	i   int // values written so far
	buf []byte
}

func newValueBlockWriter(w *bufio.Writer, n int) *valueBlockWriter {
	return &valueBlockWriter{w: w, n: n, buf: make([]byte, 0, 32)}
}

func (b *valueBlockWriter) value(v float64) error {
	if b.i >= b.n {
		return fmt.Errorf("smformat: value block overflow: %d values into a block of %d", b.i+1, b.n)
	}
	b.buf = b.buf[:0]
	if b.i%valuesPerLine != 0 {
		b.buf = append(b.buf, ' ')
	}
	b.buf = strconv.AppendFloat(b.buf, v, 'e', 17, 64)
	if (b.i+1)%valuesPerLine == 0 || b.i == b.n-1 {
		b.buf = append(b.buf, '\n')
	}
	b.i++
	_, err := b.w.Write(b.buf)
	return err
}

func (b *valueBlockWriter) slice(vs []float64) error {
	for _, v := range vs {
		if err := b.value(v); err != nil {
			return err
		}
	}
	return nil
}

func (b *valueBlockWriter) done() error {
	if b.i != b.n {
		return fmt.Errorf("smformat: value block short: %d of %d values written", b.i, b.n)
	}
	return nil
}

// V1ComponentStreamWriter writes a per-component V1 file incrementally:
// headers up front, then samples in chunks.  The bytes match
// V1Component.Write exactly.
type V1ComponentStreamWriter struct {
	wc   io.WriteCloser
	bw   *bufio.Writer
	vals *valueBlockWriter
	err  error
}

// NewV1ComponentStreamWriter opens path through fsys.Create and writes the
// header lines; Append then streams the npts samples.
func NewV1ComponentStreamWriter(fsys StreamFS, path, station string, comp seismic.Component, dt float64, npts int) (*V1ComponentStreamWriter, error) {
	if station == "" {
		return nil, fmt.Errorf("smformat: V1 component with empty station")
	}
	if dt <= 0 {
		return nil, fmt.Errorf("smformat: V1 component %s%s with non-positive DT %g", station, comp.Suffix(), dt)
	}
	if npts <= 0 {
		return nil, fmt.Errorf("smformat: V1 component %s%s has no samples", station, comp.Suffix())
	}
	wc, err := fsys.Create(path)
	if err != nil {
		return nil, fmt.Errorf("smformat: write %s: %w", path, err)
	}
	bw := bufio.NewWriter(wc)
	werr := func() error {
		if _, err := fmt.Fprintln(bw, v1CompMagic); err != nil {
			return err
		}
		if err := writeHeader(bw, "STATION", station); err != nil {
			return err
		}
		if err := writeHeader(bw, "COMPONENT", comp.String()); err != nil {
			return err
		}
		if err := writeHeaderFloat(bw, "DT", dt); err != nil {
			return err
		}
		if err := writeHeaderInt(bw, "NPTS", npts); err != nil {
			return err
		}
		return writeHeader(bw, "UNITS", "gal")
	}()
	if werr != nil {
		abortWriter(wc)
		return nil, fmt.Errorf("smformat: write %s: %w", path, werr)
	}
	return &V1ComponentStreamWriter{wc: wc, bw: bw, vals: newValueBlockWriter(bw, npts)}, nil
}

// Append streams the next run of samples in order.
func (w *V1ComponentStreamWriter) Append(vs []float64) error {
	if w.err != nil {
		return w.err
	}
	if err := w.vals.slice(vs); err != nil {
		w.err = err
		return err
	}
	return nil
}

// Close verifies the sample count, flushes, and publishes the file.  On any
// error the file is discarded instead.
func (w *V1ComponentStreamWriter) Close() error {
	err := w.err
	if err == nil {
		err = w.vals.done()
	}
	if err == nil {
		err = w.bw.Flush()
	}
	if err != nil {
		abortWriter(w.wc)
		return err
	}
	return w.wc.Close()
}

// Abort discards the partially written file.
func (w *V1ComponentStreamWriter) Abort() { abortWriter(w.wc) }

// v2Blocks is the fixed block order of a V2 file.
var v2Blocks = [3]string{"ACCELERATION", "VELOCITY", "DISPLACEMENT"}

// V2StreamWriter writes a V2 file incrementally: all headers up front
// (corners and peaks must therefore be known before the samples — the
// streamed filter computes them in its accumulation pass), then the three
// payload blocks in order, each fed in chunks.  The bytes match V2.Write
// exactly.
type V2StreamWriter struct {
	wc    io.WriteCloser
	bw    *bufio.Writer
	npts  int
	block int // blocks started so far
	vals  *valueBlockWriter
	err   error
}

// NewV2StreamWriter opens path through fsys.Create and writes the header
// lines.
func NewV2StreamWriter(fsys StreamFS, path, station string, comp seismic.Component, dt float64, npts int, filter dsp.BandPassSpec, peaks seismic.PeakValues) (*V2StreamWriter, error) {
	if station == "" {
		return nil, fmt.Errorf("smformat: V2 with empty station")
	}
	if dt <= 0 {
		return nil, fmt.Errorf("smformat: V2 %s%s with non-positive DT %g", station, comp.Suffix(), dt)
	}
	if npts <= 0 {
		return nil, fmt.Errorf("smformat: V2 %s%s has no samples", station, comp.Suffix())
	}
	wc, err := fsys.Create(path)
	if err != nil {
		return nil, fmt.Errorf("smformat: write %s: %w", path, err)
	}
	bw := bufio.NewWriter(wc)
	werr := func() error {
		if _, err := fmt.Fprintln(bw, v2Magic); err != nil {
			return err
		}
		if err := writeHeader(bw, "STATION", station); err != nil {
			return err
		}
		if err := writeHeader(bw, "COMPONENT", comp.String()); err != nil {
			return err
		}
		if err := writeHeaderFloat(bw, "DT", dt); err != nil {
			return err
		}
		if err := writeHeaderInt(bw, "NPTS", npts); err != nil {
			return err
		}
		for _, hf := range []struct {
			key string
			val float64
		}{
			{"FSL", filter.FSL}, {"FPL", filter.FPL},
			{"FPH", filter.FPH}, {"FSH", filter.FSH},
			{"PGA", peaks.PGA}, {"TPGA", peaks.TimePGA},
			{"PGV", peaks.PGV}, {"TPGV", peaks.TimePGV},
			{"PGD", peaks.PGD}, {"TPGD", peaks.TimePGD},
		} {
			if err := writeHeaderFloat(bw, hf.key, hf.val); err != nil {
				return err
			}
		}
		return nil
	}()
	if werr != nil {
		abortWriter(wc)
		return nil, fmt.Errorf("smformat: write %s: %w", path, werr)
	}
	return &V2StreamWriter{wc: wc, bw: bw, npts: npts}, nil
}

// StartBlock begins the next payload block (ACCELERATION, VELOCITY,
// DISPLACEMENT in order); the previous block must be complete.
func (w *V2StreamWriter) StartBlock() error {
	if w.err != nil {
		return w.err
	}
	if w.vals != nil {
		if err := w.vals.done(); err != nil {
			w.err = err
			return err
		}
	}
	if w.block >= len(v2Blocks) {
		w.err = fmt.Errorf("smformat: V2 stream has only %d blocks", len(v2Blocks))
		return w.err
	}
	if err := writeHeader(w.bw, "BLOCK", v2Blocks[w.block]); err != nil {
		w.err = err
		return err
	}
	w.block++
	w.vals = newValueBlockWriter(w.bw, w.npts)
	return nil
}

// Value streams the next sample of the current block.
func (w *V2StreamWriter) Value(v float64) error {
	if w.err != nil {
		return w.err
	}
	if w.vals == nil {
		w.err = fmt.Errorf("smformat: V2 stream value before StartBlock")
		return w.err
	}
	if err := w.vals.value(v); err != nil {
		w.err = err
		return err
	}
	return nil
}

// Append streams a run of samples of the current block.
func (w *V2StreamWriter) Append(vs []float64) error {
	for _, v := range vs {
		if err := w.Value(v); err != nil {
			return err
		}
	}
	return nil
}

// Close verifies all three blocks are complete, flushes, and publishes the
// file; on any error the file is discarded.
func (w *V2StreamWriter) Close() error {
	err := w.err
	if err == nil && w.block != len(v2Blocks) {
		err = fmt.Errorf("smformat: V2 stream closed after %d of %d blocks", w.block, len(v2Blocks))
	}
	if err == nil {
		err = w.vals.done()
	}
	if err == nil {
		err = w.bw.Flush()
	}
	if err != nil {
		abortWriter(w.wc)
		return err
	}
	return w.wc.Close()
}

// Abort discards the partially written file.
func (w *V2StreamWriter) Abort() { abortWriter(w.wc) }

// chunkValues adapts a valueScanner to chunked reads of a fixed-length
// block.
type chunkValues struct {
	vs   *valueScanner
	npts int
	read int
}

// read fills buf with up to len(buf) further values; (0, io.EOF) past the
// end of the block.
func (c *chunkValues) readChunk(buf []float64) (int, error) {
	if c.read >= c.npts {
		return 0, io.EOF
	}
	n := len(buf)
	if rem := c.npts - c.read; n > rem {
		n = rem
	}
	for i := 0; i < n; i++ {
		x, err := c.vs.next()
		if err != nil {
			return i, err
		}
		buf[i] = x
	}
	c.read += n
	return n, nil
}

// V1ChunkReader reads a multiplexed V1 file incrementally: headers up
// front, then each component's samples in caller-sized chunks, in canonical
// component order.
type V1ChunkReader struct {
	Station string
	DT      float64
	NPTS    int

	rc      io.ReadCloser
	h       *headerReader
	vals    chunkValues
	compIdx int
}

// OpenV1Chunks opens path through fsys and parses the record headers.
func OpenV1Chunks(fsys StreamFS, path string) (*V1ChunkReader, error) {
	rc, err := fsys.Open(path)
	if err != nil {
		return nil, fmt.Errorf("smformat: open %s: %w", path, err)
	}
	r := &V1ChunkReader{rc: rc}
	if err := r.parseHeaders(); err != nil {
		rc.Close()
		return nil, fmt.Errorf("smformat: parse %s: %w", path, err)
	}
	return r, nil
}

func (r *V1ChunkReader) parseHeaders() error {
	sc := newScanner(r.rc)
	if !sc.Scan() || sc.Text() != v1Magic {
		return fmt.Errorf("smformat: not a V1 file (missing %q)", v1Magic)
	}
	r.h = &headerReader{sc: sc, line: 1}
	var err error
	if r.Station, err = r.h.expect("STATION"); err != nil {
		return err
	}
	if r.DT, err = r.h.expectFloat("DT"); err != nil {
		return err
	}
	if r.NPTS, err = r.h.expectInt("NPTS"); err != nil {
		return err
	}
	if r.NPTS <= 0 {
		return fmt.Errorf("smformat: V1 %s: NPTS %d must be positive", r.Station, r.NPTS)
	}
	_, err = r.h.expect("UNITS")
	return err
}

// NextComponent advances to the next component block, returning its
// identity; io.EOF after the last.  The previous component's samples must
// have been fully read.
func (r *V1ChunkReader) NextComponent() (seismic.Component, error) {
	if r.compIdx > 0 && r.vals.read != r.vals.npts {
		return 0, fmt.Errorf("smformat: V1 %s: component advanced after %d of %d samples", r.Station, r.vals.read, r.vals.npts)
	}
	if r.compIdx >= len(seismic.Components) {
		return 0, io.EOF
	}
	want := seismic.Components[r.compIdx]
	name, err := r.h.expect("COMPONENT")
	if err != nil {
		return 0, err
	}
	got, err := seismic.ParseComponent(name)
	if err != nil || got != want {
		return 0, fmt.Errorf("smformat: V1 %s: component %d is %q, want %q", r.Station, r.compIdx, name, want)
	}
	vs := newValueScanner(r.h.sc, r.h.line)
	r.vals = chunkValues{vs: vs, npts: r.NPTS}
	r.compIdx++
	return want, nil
}

// Read fills buf with up to len(buf) samples of the current component;
// (0, io.EOF) at the component's end.  The header line counter stays in sync
// so the next NextComponent reports accurate positions.
func (r *V1ChunkReader) Read(buf []float64) (int, error) {
	n, err := r.vals.readChunk(buf)
	r.h.line = r.vals.vs.line
	return n, err
}

// Close releases the underlying file.
func (r *V1ChunkReader) Close() error { return r.rc.Close() }

// V1ComponentChunkReader reads a per-component V1 file incrementally.
type V1ComponentChunkReader struct {
	Station   string
	Component seismic.Component
	DT        float64
	NPTS      int

	rc   io.ReadCloser
	vals chunkValues
}

// OpenV1ComponentChunks opens path through fsys and parses the headers.
func OpenV1ComponentChunks(fsys StreamFS, path string) (*V1ComponentChunkReader, error) {
	rc, err := fsys.Open(path)
	if err != nil {
		return nil, fmt.Errorf("smformat: open %s: %w", path, err)
	}
	r := &V1ComponentChunkReader{rc: rc}
	if err := r.parseHeaders(); err != nil {
		rc.Close()
		return nil, fmt.Errorf("smformat: parse %s: %w", path, err)
	}
	return r, nil
}

func (r *V1ComponentChunkReader) parseHeaders() error {
	sc := newScanner(r.rc)
	if !sc.Scan() || sc.Text() != v1CompMagic {
		return fmt.Errorf("smformat: not a per-component V1 file (missing %q)", v1CompMagic)
	}
	h := &headerReader{sc: sc, line: 1}
	var err error
	if r.Station, err = h.expect("STATION"); err != nil {
		return err
	}
	compName, err := h.expect("COMPONENT")
	if err != nil {
		return err
	}
	if r.Component, err = seismic.ParseComponent(compName); err != nil {
		return err
	}
	if r.DT, err = h.expectFloat("DT"); err != nil {
		return err
	}
	if r.NPTS, err = h.expectInt("NPTS"); err != nil {
		return err
	}
	if r.NPTS <= 0 {
		return fmt.Errorf("smformat: V1 component %s: NPTS %d must be positive", r.Station, r.NPTS)
	}
	if _, err = h.expect("UNITS"); err != nil {
		return err
	}
	r.vals = chunkValues{vs: newValueScanner(sc, h.line), npts: r.NPTS}
	return nil
}

// Read fills buf with up to len(buf) further samples; (0, io.EOF) at the
// end.
func (r *V1ComponentChunkReader) Read(buf []float64) (int, error) {
	return r.vals.readChunk(buf)
}

// Close releases the underlying file.
func (r *V1ComponentChunkReader) Close() error { return r.rc.Close() }
