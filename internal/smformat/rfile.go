package smformat

import (
	"bufio"
	"fmt"
	"io"

	"accelproc/internal/seismic"
)

const responseMagic = "STRONG-MOTION RESPONSE SPECTRA R"

// Response is the <station><c>.r product of pipeline process #16: elastic
// response spectra of one corrected component over a period grid, at a
// single damping ratio.
type Response struct {
	Station   string
	Component seismic.Component
	Damping   float64   // fraction of critical, e.g. 0.05
	Periods   []float64 // s
	SA        []float64 // spectral acceleration, gal
	SV        []float64 // spectral (relative) velocity, cm/s
	SD        []float64 // spectral (relative) displacement, cm
}

// Validate checks internal consistency.
func (r Response) Validate() error {
	if r.Station == "" {
		return fmt.Errorf("smformat: R file with empty station")
	}
	if r.Damping <= 0 || r.Damping >= 1 {
		return fmt.Errorf("smformat: R %s%s damping %g outside (0,1)", r.Station, r.Component.Suffix(), r.Damping)
	}
	n := len(r.Periods)
	if n == 0 {
		return fmt.Errorf("smformat: R %s%s has no periods", r.Station, r.Component.Suffix())
	}
	if len(r.SA) != n || len(r.SV) != n || len(r.SD) != n {
		return fmt.Errorf("smformat: R %s%s spectra lengths differ (T %d, SA %d, SV %d, SD %d)",
			r.Station, r.Component.Suffix(), n, len(r.SA), len(r.SV), len(r.SD))
	}
	for i := 1; i < n; i++ {
		if r.Periods[i] <= r.Periods[i-1] {
			return fmt.Errorf("smformat: R %s%s periods not strictly increasing at %d", r.Station, r.Component.Suffix(), i)
		}
	}
	return nil
}

// Write serializes the R file.
func (r Response) Write(w io.Writer) error {
	if err := r.Validate(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	err := func() error {
		if _, err := fmt.Fprintln(bw, responseMagic); err != nil {
			return err
		}
		if err := writeHeader(bw, "STATION", r.Station); err != nil {
			return err
		}
		if err := writeHeader(bw, "COMPONENT", r.Component.String()); err != nil {
			return err
		}
		if err := writeHeaderFloat(bw, "DAMPING", r.Damping); err != nil {
			return err
		}
		if err := writeHeaderInt(bw, "NPERIODS", len(r.Periods)); err != nil {
			return err
		}
		for _, block := range []struct {
			name string
			data []float64
		}{
			{"PERIODS", r.Periods}, {"SA", r.SA}, {"SV", r.SV}, {"SD", r.SD},
		} {
			if err := writeHeader(bw, "BLOCK", block.name); err != nil {
				return err
			}
			if err := writeValues(bw, block.data); err != nil {
				return err
			}
		}
		return nil
	}()
	return flush(bw, err)
}

// ParseResponse reads an R file.
func ParseResponse(rd io.Reader) (Response, error) {
	sc := newScanner(rd)
	if !sc.Scan() || sc.Text() != responseMagic {
		return Response{}, fmt.Errorf("smformat: not an R file (missing %q)", responseMagic)
	}
	h := &headerReader{sc: sc, line: 1}
	var r Response
	var err error
	if r.Station, err = h.expect("STATION"); err != nil {
		return Response{}, err
	}
	compName, err := h.expect("COMPONENT")
	if err != nil {
		return Response{}, err
	}
	if r.Component, err = seismic.ParseComponent(compName); err != nil {
		return Response{}, err
	}
	if r.Damping, err = h.expectFloat("DAMPING"); err != nil {
		return Response{}, err
	}
	nper, err := h.expectInt("NPERIODS")
	if err != nil {
		return Response{}, err
	}
	if nper <= 0 {
		return Response{}, fmt.Errorf("smformat: R %s: NPERIODS %d must be positive", r.Station, nper)
	}
	for _, block := range []struct {
		name string
		dst  *[]float64
	}{
		{"PERIODS", &r.Periods}, {"SA", &r.SA}, {"SV", &r.SV}, {"SD", &r.SD},
	} {
		name, err := h.expect("BLOCK")
		if err != nil {
			return Response{}, err
		}
		if name != block.name {
			return Response{}, fmt.Errorf("smformat: R %s: block %q, want %q", r.Station, name, block.name)
		}
		vs := newValueScanner(sc, h.line)
		if *block.dst, err = vs.readBlock(nper); err != nil {
			return Response{}, fmt.Errorf("smformat: R %s%s block %s: %w", r.Station, r.Component.Suffix(), name, err)
		}
		h.line = vs.line
	}
	if err := r.Validate(); err != nil {
		return Response{}, err
	}
	return r, nil
}
