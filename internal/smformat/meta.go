package smformat

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"accelproc/internal/dsp"
	"accelproc/internal/seismic"
)

// SignalKey identifies one component signal of one station, the unit the
// filter-parameter and max-value metadata is keyed by.
type SignalKey struct {
	Station   string
	Component seismic.Component
}

func (k SignalKey) String() string { return k.Station + k.Component.Suffix() }

// sortedKeys returns map keys in deterministic (station, component) order so
// metadata files are byte-identical across runs and pipeline variants.
func sortedKeys[V any](m map[SignalKey]V) []SignalKey {
	keys := make([]SignalKey, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Station != keys[j].Station {
			return keys[i].Station < keys[j].Station
		}
		return keys[i].Component < keys[j].Component
	})
	return keys
}

const filterParamsMagic = "FILTER PARAMETERS"

// FilterParams is the pipeline's "filter params" metadata file: the default
// band-pass corners written by process #2 and, after the Fourier analysis of
// process #10, the per-signal corners used for the definitive correction.
type FilterParams struct {
	Default   dsp.BandPassSpec
	PerSignal map[SignalKey]dsp.BandPassSpec
}

// Spec returns the corners to use for a signal: its per-signal entry if
// present, the default otherwise.
func (p FilterParams) Spec(key SignalKey) dsp.BandPassSpec {
	if s, ok := p.PerSignal[key]; ok {
		return s
	}
	return p.Default
}

// Write serializes the filter-parameter file with deterministic ordering.
func (p FilterParams) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	err := func() error {
		if _, err := fmt.Fprintln(bw, filterParamsMagic); err != nil {
			return err
		}
		if err := writeSpecLine(bw, "DEFAULT", "-", p.Default); err != nil {
			return err
		}
		if err := writeHeaderInt(bw, "NSIGNALS", len(p.PerSignal)); err != nil {
			return err
		}
		for _, k := range sortedKeys(p.PerSignal) {
			if err := writeSpecLine(bw, k.Station, k.Component.Suffix(), p.PerSignal[k]); err != nil {
				return err
			}
		}
		return nil
	}()
	return flush(bw, err)
}

func writeSpecLine(w *bufio.Writer, station, comp string, s dsp.BandPassSpec) error {
	bp := linePool.Get().(*[]byte)
	buf := append((*bp)[:0], station...)
	buf = append(buf, ' ')
	buf = append(buf, comp...)
	for _, f := range [4]float64{s.FSL, s.FPL, s.FPH, s.FSH} {
		buf = append(buf, ' ')
		buf = strconv.AppendFloat(buf, f, 'e', 17, 64)
	}
	buf = append(buf, '\n')
	_, err := w.Write(buf)
	*bp = buf[:0]
	linePool.Put(bp)
	return err
}

func parseSpecLine(fields []string) (station, comp string, s dsp.BandPassSpec, err error) {
	if len(fields) != 6 {
		return "", "", s, fmt.Errorf("smformat: filter line has %d fields, want 6", len(fields))
	}
	vals := make([]float64, 4)
	for i := 0; i < 4; i++ {
		vals[i], err = strconv.ParseFloat(fields[2+i], 64)
		if err != nil {
			return "", "", s, fmt.Errorf("smformat: filter line: %v", err)
		}
	}
	return fields[0], fields[1], dsp.BandPassSpec{FSL: vals[0], FPL: vals[1], FPH: vals[2], FSH: vals[3]}, nil
}

// ParseFilterParams reads a filter-parameter file.
func ParseFilterParams(r io.Reader) (FilterParams, error) {
	sc := newScanner(r)
	if !sc.Scan() || sc.Text() != filterParamsMagic {
		return FilterParams{}, fmt.Errorf("smformat: not a filter-parameter file (missing %q)", filterParamsMagic)
	}
	var p FilterParams
	if !sc.Scan() {
		return FilterParams{}, fmt.Errorf("smformat: filter-parameter file missing DEFAULT line")
	}
	station, _, spec, err := parseSpecLine(strings.Fields(sc.Text()))
	if err != nil {
		return FilterParams{}, err
	}
	if station != "DEFAULT" {
		return FilterParams{}, fmt.Errorf("smformat: filter-parameter file: first line is %q, want DEFAULT", station)
	}
	p.Default = spec
	h := &headerReader{sc: sc, line: 2}
	n, err := h.expectInt("NSIGNALS")
	if err != nil {
		return FilterParams{}, err
	}
	if n < 0 {
		return FilterParams{}, fmt.Errorf("smformat: NSIGNALS %d must be non-negative", n)
	}
	p.PerSignal = make(map[SignalKey]dsp.BandPassSpec, n)
	for i := 0; i < n; i++ {
		if !sc.Scan() {
			if err := sc.Err(); err != nil {
				return FilterParams{}, err
			}
			return FilterParams{}, fmt.Errorf("smformat: filter-parameter file truncated at signal %d", i)
		}
		station, compStr, spec, err := parseSpecLine(strings.Fields(sc.Text()))
		if err != nil {
			return FilterParams{}, err
		}
		comp, err := seismic.ParseComponent(compStr)
		if err != nil {
			return FilterParams{}, err
		}
		key := SignalKey{Station: station, Component: comp}
		if _, dup := p.PerSignal[key]; dup {
			return FilterParams{}, fmt.Errorf("smformat: duplicate filter entry for %s", key)
		}
		p.PerSignal[key] = spec
	}
	return p, nil
}

const fileListMagic = "FILELIST"

// FileList is a named list of file names, the metadata product of the
// pipeline's lightweight "initialize metadata" processes (#1, #5, #8, #17).
type FileList struct {
	Name  string // list identity, e.g. "v1list", "fourier-graph"
	Files []string
}

// Write serializes the file list.
func (l FileList) Write(w io.Writer) error {
	if l.Name == "" || strings.ContainsAny(l.Name, " \t\n") {
		return fmt.Errorf("smformat: invalid file-list name %q", l.Name)
	}
	bw := bufio.NewWriter(w)
	err := func() error {
		if _, err := fmt.Fprintf(bw, "%s %s\n", fileListMagic, l.Name); err != nil {
			return err
		}
		if err := writeHeaderInt(bw, "NFILES", len(l.Files)); err != nil {
			return err
		}
		for _, f := range l.Files {
			if f == "" || strings.ContainsAny(f, "\n") {
				return fmt.Errorf("smformat: invalid file name %q in list %s", f, l.Name)
			}
			if _, err := fmt.Fprintln(bw, f); err != nil {
				return err
			}
		}
		return nil
	}()
	return flush(bw, err)
}

// ParseFileList reads a file list.
func ParseFileList(r io.Reader) (FileList, error) {
	sc := newScanner(r)
	if !sc.Scan() {
		return FileList{}, fmt.Errorf("smformat: empty file list")
	}
	magic, name, ok := strings.Cut(sc.Text(), " ")
	if !ok || magic != fileListMagic {
		return FileList{}, fmt.Errorf("smformat: not a file list (bad header %q)", sc.Text())
	}
	l := FileList{Name: name}
	h := &headerReader{sc: sc, line: 1}
	n, err := h.expectInt("NFILES")
	if err != nil {
		return FileList{}, err
	}
	if n < 0 {
		return FileList{}, fmt.Errorf("smformat: NFILES %d must be non-negative", n)
	}
	l.Files = make([]string, 0, n)
	for i := 0; i < n; i++ {
		if !sc.Scan() {
			if err := sc.Err(); err != nil {
				return FileList{}, err
			}
			return FileList{}, fmt.Errorf("smformat: file list %s truncated at entry %d", l.Name, i)
		}
		f := strings.TrimSpace(sc.Text())
		if f == "" {
			return FileList{}, fmt.Errorf("smformat: file list %s has empty entry %d", l.Name, i)
		}
		l.Files = append(l.Files, f)
	}
	return l, nil
}

const maxValuesMagic = "MAX VALUES"

// MaxValues is the "max values" metadata file the filter processes produce:
// the peak ground motion of every corrected signal.
type MaxValues struct {
	Peaks map[SignalKey]seismic.PeakValues
}

// Write serializes the max-values file with deterministic ordering.
func (m MaxValues) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	err := func() error {
		if _, err := fmt.Fprintln(bw, maxValuesMagic); err != nil {
			return err
		}
		if err := writeHeaderInt(bw, "NSIGNALS", len(m.Peaks)); err != nil {
			return err
		}
		bp := linePool.Get().(*[]byte)
		buf := (*bp)[:0]
		defer func() { *bp = buf[:0]; linePool.Put(bp) }()
		for _, k := range sortedKeys(m.Peaks) {
			p := m.Peaks[k]
			buf = append(buf[:0], k.Station...)
			buf = append(buf, ' ')
			buf = append(buf, k.Component.Suffix()...)
			for _, f := range [6]float64{p.PGA, p.TimePGA, p.PGV, p.TimePGV, p.PGD, p.TimePGD} {
				buf = append(buf, ' ')
				buf = strconv.AppendFloat(buf, f, 'e', 17, 64)
			}
			buf = append(buf, '\n')
			if _, err := bw.Write(buf); err != nil {
				return err
			}
		}
		return nil
	}()
	return flush(bw, err)
}

// ParseMaxValues reads a max-values file.
func ParseMaxValues(r io.Reader) (MaxValues, error) {
	sc := newScanner(r)
	if !sc.Scan() || sc.Text() != maxValuesMagic {
		return MaxValues{}, fmt.Errorf("smformat: not a max-values file (missing %q)", maxValuesMagic)
	}
	h := &headerReader{sc: sc, line: 1}
	n, err := h.expectInt("NSIGNALS")
	if err != nil {
		return MaxValues{}, err
	}
	if n < 0 {
		return MaxValues{}, fmt.Errorf("smformat: NSIGNALS %d must be non-negative", n)
	}
	m := MaxValues{Peaks: make(map[SignalKey]seismic.PeakValues, n)}
	for i := 0; i < n; i++ {
		if !sc.Scan() {
			if err := sc.Err(); err != nil {
				return MaxValues{}, err
			}
			return MaxValues{}, fmt.Errorf("smformat: max-values file truncated at signal %d", i)
		}
		fields := strings.Fields(sc.Text())
		if len(fields) != 8 {
			return MaxValues{}, fmt.Errorf("smformat: max-values line has %d fields, want 8", len(fields))
		}
		comp, err := seismic.ParseComponent(fields[1])
		if err != nil {
			return MaxValues{}, err
		}
		vals := make([]float64, 6)
		for j := range vals {
			vals[j], err = strconv.ParseFloat(fields[2+j], 64)
			if err != nil {
				return MaxValues{}, fmt.Errorf("smformat: max-values line: %v", err)
			}
		}
		key := SignalKey{Station: fields[0], Component: comp}
		if _, dup := m.Peaks[key]; dup {
			return MaxValues{}, fmt.Errorf("smformat: duplicate max-values entry for %s", key)
		}
		m.Peaks[key] = seismic.PeakValues{
			PGA: vals[0], TimePGA: vals[1],
			PGV: vals[2], TimePGV: vals[3],
			PGD: vals[4], TimePGD: vals[5],
		}
	}
	return m, nil
}
