package smformat

import (
	"bufio"
	"fmt"
	"io"

	"accelproc/internal/seismic"
)

// V1 file magic header lines.
const (
	v1Magic     = "STRONG-MOTION UNCORRECTED RECORD V1"
	v1CompMagic = "STRONG-MOTION UNCORRECTED COMPONENT V1"
)

// V1Magic is the first line of every multiplexed V1 file; the ingest
// plane's format sniffer matches it.
const V1Magic = v1Magic

// V1ComponentMagic is the first line of every per-component V1 product;
// the pipeline's gather step uses it to keep demultiplexed products out of
// the input set even under a forced -format override.
const V1ComponentMagic = v1CompMagic

// V1 is the uncorrected record of one station: raw acceleration for the
// three components, multiplexed into a single <station>.v1 file as recorded
// by the accelerograph.
type V1 struct {
	Station string
	DT      float64      // sample interval, s
	Accel   [3][]float64 // gal, indexed by seismic.Component order (L, T, V)
}

// FromRecord converts a domain record into its V1 file representation.
func FromRecord(rec seismic.Record) V1 {
	var v V1
	v.Station = rec.Station
	v.DT = rec.Accel[0].DT
	for ci := range rec.Accel {
		v.Accel[ci] = rec.Accel[ci].Data
	}
	return v
}

// Record converts the V1 content back to a domain record.
func (v V1) Record() seismic.Record {
	var rec seismic.Record
	rec.Station = v.Station
	for ci := range v.Accel {
		rec.Accel[ci] = seismic.Trace{DT: v.DT, Data: v.Accel[ci]}
	}
	return rec
}

// Validate checks internal consistency of the V1 content.
func (v V1) Validate() error {
	if v.Station == "" {
		return fmt.Errorf("smformat: V1 with empty station")
	}
	if v.DT <= 0 {
		return fmt.Errorf("smformat: V1 %s with non-positive DT %g", v.Station, v.DT)
	}
	n := len(v.Accel[0])
	if n == 0 {
		return fmt.Errorf("smformat: V1 %s has no samples", v.Station)
	}
	for ci := 1; ci < 3; ci++ {
		if len(v.Accel[ci]) != n {
			return fmt.Errorf("smformat: V1 %s component lengths differ (%d vs %d)", v.Station, n, len(v.Accel[ci]))
		}
	}
	return nil
}

// Write serializes the multiplexed V1 file.
func (v V1) Write(w io.Writer) error {
	if err := v.Validate(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	err := func() error {
		if _, err := fmt.Fprintln(bw, v1Magic); err != nil {
			return err
		}
		if err := writeHeader(bw, "STATION", v.Station); err != nil {
			return err
		}
		if err := writeHeaderFloat(bw, "DT", v.DT); err != nil {
			return err
		}
		if err := writeHeaderInt(bw, "NPTS", len(v.Accel[0])); err != nil {
			return err
		}
		if err := writeHeader(bw, "UNITS", "gal"); err != nil {
			return err
		}
		for ci, comp := range seismic.Components {
			if err := writeHeader(bw, "COMPONENT", comp.String()); err != nil {
				return err
			}
			if err := writeValues(bw, v.Accel[ci]); err != nil {
				return err
			}
		}
		return nil
	}()
	return flush(bw, err)
}

// ParseV1 reads a multiplexed V1 file.
func ParseV1(r io.Reader) (V1, error) {
	sc := newScanner(r)
	if !sc.Scan() || sc.Text() != v1Magic {
		return V1{}, syntaxErrf(1, "not a V1 file (missing %q)", v1Magic)
	}
	h := &headerReader{sc: sc, line: 1}
	var v V1
	var err error
	if v.Station, err = h.expect("STATION"); err != nil {
		return V1{}, err
	}
	if v.DT, err = h.expectFloat("DT"); err != nil {
		return V1{}, err
	}
	npts, err := h.expectInt("NPTS")
	if err != nil {
		return V1{}, err
	}
	if npts <= 0 {
		return V1{}, syntaxErrf(h.line, "V1 %s: NPTS %d must be positive", v.Station, npts)
	}
	if _, err = h.expect("UNITS"); err != nil {
		return V1{}, err
	}
	for ci, comp := range seismic.Components {
		name, err := h.expect("COMPONENT")
		if err != nil {
			return V1{}, err
		}
		got, err := seismic.ParseComponent(name)
		if err != nil || got != comp {
			return V1{}, syntaxErrf(h.line, "V1 %s: component %d is %q, want %q", v.Station, ci, name, comp)
		}
		vs := newValueScanner(sc, h.line)
		v.Accel[ci], err = vs.readBlock(npts)
		if err != nil {
			return V1{}, fmt.Errorf("smformat: V1 %s component %s: %w", v.Station, comp, err)
		}
		h.line = vs.line
	}
	if err := v.Validate(); err != nil {
		return V1{}, err
	}
	return v, nil
}

// V1Component is one demultiplexed component, stored as <station><c>.v1 by
// pipeline process #3.
type V1Component struct {
	Station   string
	Component seismic.Component
	DT        float64
	Accel     []float64
}

// Validate checks internal consistency.
func (v V1Component) Validate() error {
	if v.Station == "" {
		return fmt.Errorf("smformat: V1 component with empty station")
	}
	if v.DT <= 0 {
		return fmt.Errorf("smformat: V1 component %s%s with non-positive DT %g", v.Station, v.Component.Suffix(), v.DT)
	}
	if len(v.Accel) == 0 {
		return fmt.Errorf("smformat: V1 component %s%s has no samples", v.Station, v.Component.Suffix())
	}
	return nil
}

// Write serializes the per-component V1 file.
func (v V1Component) Write(w io.Writer) error {
	if err := v.Validate(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	err := func() error {
		if _, err := fmt.Fprintln(bw, v1CompMagic); err != nil {
			return err
		}
		if err := writeHeader(bw, "STATION", v.Station); err != nil {
			return err
		}
		if err := writeHeader(bw, "COMPONENT", v.Component.String()); err != nil {
			return err
		}
		if err := writeHeaderFloat(bw, "DT", v.DT); err != nil {
			return err
		}
		if err := writeHeaderInt(bw, "NPTS", len(v.Accel)); err != nil {
			return err
		}
		if err := writeHeader(bw, "UNITS", "gal"); err != nil {
			return err
		}
		return writeValues(bw, v.Accel)
	}()
	return flush(bw, err)
}

// ParseV1Component reads a per-component V1 file.
func ParseV1Component(r io.Reader) (V1Component, error) {
	sc := newScanner(r)
	if !sc.Scan() || sc.Text() != v1CompMagic {
		return V1Component{}, syntaxErrf(1, "not a per-component V1 file (missing %q)", v1CompMagic)
	}
	h := &headerReader{sc: sc, line: 1}
	var v V1Component
	var err error
	if v.Station, err = h.expect("STATION"); err != nil {
		return V1Component{}, err
	}
	compName, err := h.expect("COMPONENT")
	if err != nil {
		return V1Component{}, err
	}
	if v.Component, err = seismic.ParseComponent(compName); err != nil {
		return V1Component{}, err
	}
	if v.DT, err = h.expectFloat("DT"); err != nil {
		return V1Component{}, err
	}
	npts, err := h.expectInt("NPTS")
	if err != nil {
		return V1Component{}, err
	}
	if npts <= 0 {
		return V1Component{}, syntaxErrf(h.line, "V1 component %s: NPTS %d must be positive", v.Station, npts)
	}
	if _, err = h.expect("UNITS"); err != nil {
		return V1Component{}, err
	}
	vs := newValueScanner(sc, h.line)
	if v.Accel, err = vs.readBlock(npts); err != nil {
		return V1Component{}, fmt.Errorf("smformat: V1 component %s%s: %w", v.Station, v.Component.Suffix(), err)
	}
	if err := v.Validate(); err != nil {
		return V1Component{}, err
	}
	return v, nil
}
