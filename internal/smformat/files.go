package smformat

import (
	"compress/gzip"
	"fmt"
	"io"
	"os"
	"strings"

	"accelproc/internal/seismic"
)

// Canonical file names used throughout the pipeline (paper Figure 5).

// V1FileName returns "<station>.v1".
func V1FileName(station string) string { return station + ".v1" }

// V1ComponentFileName returns "<station><c>.v1".
func V1ComponentFileName(station string, c seismic.Component) string {
	return station + c.Suffix() + ".v1"
}

// V2FileName returns "<station><c>.v2".
func V2FileName(station string, c seismic.Component) string {
	return station + c.Suffix() + ".v2"
}

// FourierFileName returns "<station><c>.f".
func FourierFileName(station string, c seismic.Component) string {
	return station + c.Suffix() + ".f"
}

// ResponseFileName returns "<station><c>.r".
func ResponseFileName(station string, c seismic.Component) string {
	return station + c.Suffix() + ".r"
}

// Metadata file names (fixed, one per work directory).
const (
	V1ListFile        = "v1list.meta"
	FilterParamsFile  = "filterparams.meta"
	AccGraphFile      = "acc-graph.meta"
	FourierMetaFile   = "fourier.meta"
	ResponseMetaFile  = "response.meta"
	FourierGraphFile  = "fourier-graph.meta"
	ResponseGraphFile = "response-graph.meta"
	MaxValuesFile     = "maxvalues.meta"
	FlagsFile         = "flags.meta"
)

// Plot file names (PostScript, as in the legacy chain).

// AccelPlotFileName returns "<station>.ps".
func AccelPlotFileName(station string) string { return station + ".ps" }

// FourierPlotFileName returns "<station>f.ps".
func FourierPlotFileName(station string) string { return station + "f.ps" }

// ResponsePlotFileName returns "<station>r.ps".
func ResponsePlotFileName(station string) string { return station + "r.ps" }

// writerTo abstracts the Write method shared by every format type.
type writerTo interface{ Write(io.Writer) error }

// writeFile writes one product file (create, write, close, with the first
// error reported).  Paths ending in ".gz" are written gzip-compressed —
// the storage mode of long-term strong-motion archives.
//
// The bytes land in a sibling temp file that is renamed into place, so the
// destination only ever holds a complete file, and — load-bearing for the
// artifact cache's hardlink staging — an overwrite binds the path to a fresh
// inode instead of truncating one the destination may share with a staged
// hardlink.
func writeFile(path string, v writerTo) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("smformat: create %s: %w", path, err)
	}
	var werr error
	if strings.HasSuffix(path, ".gz") {
		gz := gzip.NewWriter(f)
		werr = v.Write(gz)
		if cerr := gz.Close(); werr == nil {
			werr = cerr
		}
	} else {
		werr = v.Write(f)
	}
	cerr := f.Close()
	if werr != nil {
		os.Remove(tmp)
		return fmt.Errorf("smformat: write %s: %w", path, werr)
	}
	if cerr != nil {
		os.Remove(tmp)
		return fmt.Errorf("smformat: close %s: %w", path, cerr)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("smformat: replace %s: %w", path, err)
	}
	return nil
}

// WriteV1File writes a multiplexed V1 to path.
func WriteV1File(path string, v V1) error { return writeFile(path, v) }

// WriteV1ComponentFile writes a per-component V1 to path.
func WriteV1ComponentFile(path string, v V1Component) error { return writeFile(path, v) }

// WriteV2File writes a V2 to path.
func WriteV2File(path string, v V2) error { return writeFile(path, v) }

// WriteFourierFile writes an F file to path.
func WriteFourierFile(path string, f Fourier) error { return writeFile(path, f) }

// WriteResponseFile writes an R file to path.
func WriteResponseFile(path string, r Response) error { return writeFile(path, r) }

// WriteGEMFile writes a GEM export to path.
func WriteGEMFile(path string, g GEM) error { return writeFile(path, g) }

// WriteFileListFile writes a file list to path.
func WriteFileListFile(path string, l FileList) error { return writeFile(path, l) }

// WriteFilterParamsFile writes a filter-parameter file to path.
func WriteFilterParamsFile(path string, p FilterParams) error { return writeFile(path, p) }

// WriteMaxValuesFile writes a max-values file to path.
func WriteMaxValuesFile(path string, m MaxValues) error { return writeFile(path, m) }

// readFile opens path and parses it with parse, transparently decompressing
// ".gz" archives.
func readFile[T any](path string, parse func(io.Reader) (T, error)) (T, error) {
	var zero T
	f, err := os.Open(path)
	if err != nil {
		return zero, fmt.Errorf("smformat: open %s: %w", path, err)
	}
	defer f.Close()
	var r io.Reader = f
	if strings.HasSuffix(path, ".gz") {
		gz, err := gzip.NewReader(f)
		if err != nil {
			return zero, fmt.Errorf("smformat: decompress %s: %w", path, err)
		}
		defer gz.Close()
		r = gz
	}
	v, err := parse(r)
	if err != nil {
		return zero, fmt.Errorf("smformat: parse %s: %w", path, err)
	}
	return v, nil
}

// ReadV1File parses the multiplexed V1 at path.
func ReadV1File(path string) (V1, error) { return readFile(path, ParseV1) }

// ReadV1ComponentFile parses the per-component V1 at path.
func ReadV1ComponentFile(path string) (V1Component, error) {
	return readFile(path, ParseV1Component)
}

// ReadV2File parses the V2 at path.
func ReadV2File(path string) (V2, error) { return readFile(path, ParseV2) }

// ReadFourierFile parses the F file at path.
func ReadFourierFile(path string) (Fourier, error) { return readFile(path, ParseFourier) }

// ReadResponseFile parses the R file at path.
func ReadResponseFile(path string) (Response, error) { return readFile(path, ParseResponse) }

// ReadGEMFile parses the GEM export at path.
func ReadGEMFile(path string) (GEM, error) { return readFile(path, ParseGEM) }

// ReadFileListFile parses the file list at path.
func ReadFileListFile(path string) (FileList, error) { return readFile(path, ParseFileList) }

// ReadFilterParamsFile parses the filter-parameter file at path.
func ReadFilterParamsFile(path string) (FilterParams, error) {
	return readFile(path, ParseFilterParams)
}

// ReadMaxValuesFile parses the max-values file at path.
func ReadMaxValuesFile(path string) (MaxValues, error) { return readFile(path, ParseMaxValues) }
