package smformat

import (
	"bytes"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"accelproc/internal/dsp"
	"accelproc/internal/seismic"
)

// testStreamFS satisfies StreamFS over a plain directory for the identity
// tests.
type testStreamFS struct{ dir string }

func (f testStreamFS) ReadFile(p string) ([]byte, error) {
	return os.ReadFile(filepath.Join(f.dir, p))
}
func (f testStreamFS) WriteFile(p string, b []byte, m os.FileMode) error {
	return os.WriteFile(filepath.Join(f.dir, p), b, m)
}
func (f testStreamFS) Open(p string) (io.ReadCloser, error) {
	return os.Open(filepath.Join(f.dir, p))
}
func (f testStreamFS) Create(p string) (io.WriteCloser, error) {
	return os.Create(filepath.Join(f.dir, p))
}

func randomValues(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	vs := make([]float64, n)
	for i := range vs {
		vs[i] = rng.NormFloat64() * 100
	}
	return vs
}

// feedChunks drives f over vs in uneven chunk sizes.
func feedChunks(vs []float64, f func([]float64) error) error {
	sizes := []int{1, 7, 64, 1000}
	i, s := 0, 0
	for i < len(vs) {
		sz := sizes[s%len(sizes)]
		s++
		end := i + sz
		if end > len(vs) {
			end = len(vs)
		}
		if err := f(vs[i:end]); err != nil {
			return err
		}
		i = end
	}
	return nil
}

func TestV1ComponentStreamWriterByteIdentity(t *testing.T) {
	fsys := testStreamFS{dir: t.TempDir()}
	for _, npts := range []int{1, 3, 4, 5, 1000} {
		v := V1Component{Station: "ST01", Component: seismic.Transversal, DT: 0.005, Accel: randomValues(npts, int64(npts))}
		var want bytes.Buffer
		if err := v.Write(&want); err != nil {
			t.Fatal(err)
		}
		w, err := NewV1ComponentStreamWriter(fsys, "st01t.v1", v.Station, v.Component, v.DT, npts)
		if err != nil {
			t.Fatal(err)
		}
		if err := feedChunks(v.Accel, w.Append); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		got, err := fsys.ReadFile("st01t.v1")
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want.Bytes()) {
			t.Fatalf("npts=%d: streamed V1 component differs from batch write", npts)
		}
	}
}

func TestV2StreamWriterByteIdentity(t *testing.T) {
	fsys := testStreamFS{dir: t.TempDir()}
	for _, npts := range []int{1, 4, 997} {
		v := V2{
			Station:   "ST02",
			Component: seismic.Vertical,
			DT:        0.01,
			Filter:    dsp.BandPassSpec{FSL: 0.1, FPL: 0.25, FPH: 23, FSH: 25},
			Peaks:     seismic.PeakValues{PGA: 1.5, TimePGA: 2, PGV: 0.5, TimePGV: 3, PGD: 0.1, TimePGD: 4},
			Accel:     randomValues(npts, 1),
			Vel:       randomValues(npts, 2),
			Disp:      randomValues(npts, 3),
		}
		var want bytes.Buffer
		if err := v.Write(&want); err != nil {
			t.Fatal(err)
		}
		w, err := NewV2StreamWriter(fsys, "st02v.v2", v.Station, v.Component, v.DT, npts, v.Filter, v.Peaks)
		if err != nil {
			t.Fatal(err)
		}
		for _, block := range [][]float64{v.Accel, v.Vel, v.Disp} {
			if err := w.StartBlock(); err != nil {
				t.Fatal(err)
			}
			if err := feedChunks(block, w.Append); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		got, err := fsys.ReadFile("st02v.v2")
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want.Bytes()) {
			t.Fatalf("npts=%d: streamed V2 differs from batch write", npts)
		}
		// And it must parse back to the identical value.
		parsed, err := ReadV2FileFS(fsys, "st02v.v2")
		if err != nil {
			t.Fatal(err)
		}
		if parsed.Station != v.Station || parsed.Peaks != v.Peaks || parsed.Filter != v.Filter {
			t.Fatalf("npts=%d: parsed V2 headers differ", npts)
		}
	}
}

func TestV2StreamWriterGuards(t *testing.T) {
	fsys := testStreamFS{dir: t.TempDir()}
	w, err := NewV2StreamWriter(fsys, "x.v2", "ST", seismic.Longitudinal, 0.01, 4, dsp.BandPassSpec{}, seismic.PeakValues{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Value(1); err == nil {
		t.Error("value before StartBlock accepted")
	}
	w.Abort()

	w, err = NewV2StreamWriter(fsys, "y.v2", "ST", seismic.Longitudinal, 0.01, 2, dsp.BandPassSpec{}, seismic.PeakValues{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.StartBlock(); err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]float64{1}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err == nil {
		t.Error("short close accepted")
	}
}

func TestV1ChunkReaderMatchesParse(t *testing.T) {
	fsys := testStreamFS{dir: t.TempDir()}
	for _, npts := range []int{1, 5, 4096} {
		v := V1{Station: "CHNK", DT: 0.005}
		for ci := range v.Accel {
			v.Accel[ci] = randomValues(npts, int64(100*npts+ci))
		}
		if err := WriteV1FileFS(fsys, "chnk.v1", v); err != nil {
			t.Fatal(err)
		}
		r, err := OpenV1Chunks(fsys, "chnk.v1")
		if err != nil {
			t.Fatal(err)
		}
		if r.Station != v.Station || r.DT != v.DT || r.NPTS != npts {
			t.Fatalf("npts=%d: chunk reader headers %q/%g/%d", npts, r.Station, r.DT, r.NPTS)
		}
		for ci, comp := range seismic.Components {
			got, err := r.NextComponent()
			if err != nil {
				t.Fatal(err)
			}
			if got != comp {
				t.Fatalf("component %d is %v, want %v", ci, got, comp)
			}
			var all []float64
			buf := make([]float64, 37)
			for {
				n, err := r.Read(buf)
				all = append(all, buf[:n]...)
				if err == io.EOF {
					break
				}
				if err != nil {
					t.Fatal(err)
				}
			}
			if len(all) != npts {
				t.Fatalf("component %v: %d samples, want %d", comp, len(all), npts)
			}
			for i := range all {
				if all[i] != v.Accel[ci][i] {
					t.Fatalf("component %v sample %d: %v != %v", comp, i, all[i], v.Accel[ci][i])
				}
			}
		}
		if _, err := r.NextComponent(); err != io.EOF {
			t.Fatalf("after last component: %v, want io.EOF", err)
		}
		r.Close()
	}
}

func TestV1ComponentChunkReaderMatchesParse(t *testing.T) {
	fsys := testStreamFS{dir: t.TempDir()}
	v := V1Component{Station: "CMP", Component: seismic.Longitudinal, DT: 0.01, Accel: randomValues(2049, 9)}
	if err := WriteV1ComponentFileFS(fsys, "cmpl.v1", v); err != nil {
		t.Fatal(err)
	}
	r, err := OpenV1ComponentChunks(fsys, "cmpl.v1")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Station != v.Station || r.Component != v.Component || r.DT != v.DT || r.NPTS != len(v.Accel) {
		t.Fatalf("chunk reader headers %+v", r)
	}
	var all []float64
	buf := make([]float64, 100)
	for {
		n, err := r.Read(buf)
		all = append(all, buf[:n]...)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if len(all) != len(v.Accel) {
		t.Fatalf("%d samples, want %d", len(all), len(v.Accel))
	}
	for i := range all {
		if all[i] != v.Accel[i] {
			t.Fatalf("sample %d: %v != %v", i, all[i], v.Accel[i])
		}
	}
}

func TestWriteFileCreateFSByteIdentity(t *testing.T) {
	fsys := testStreamFS{dir: t.TempDir()}
	v := V2{
		Station: "EQ", Component: seismic.Longitudinal, DT: 0.02,
		Accel: randomValues(33, 4), Vel: randomValues(33, 5), Disp: randomValues(33, 6),
	}
	if err := WriteV2FileFS(fsys, "batch.v2", v); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileCreateFS(fsys, "stream.v2", v); err != nil {
		t.Fatal(err)
	}
	batch, _ := fsys.ReadFile("batch.v2")
	streamed, _ := fsys.ReadFile("stream.v2")
	if !bytes.Equal(batch, streamed) {
		t.Fatal("Create-routed write differs from WriteFile-routed write")
	}
}
