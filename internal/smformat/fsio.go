package smformat

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
	"os"
	"strings"
)

// FS is the minimal storage surface the format codecs need.  It is satisfied
// structurally by any workspace backend (see internal/storage) without this
// package importing one — keeping smformat dependency-free the way the plain
// os wrappers in files.go are.  Atomicity of WriteFile (temp + rename or an
// in-memory swap) is the backend's concern.
type FS interface {
	ReadFile(path string) ([]byte, error)
	WriteFile(path string, data []byte, perm os.FileMode) error
}

// writeFileFS renders v to a buffer (gzip-compressed for ".gz" paths) and
// hands the complete payload to the backend in one WriteFile call.
func writeFileFS(fsys FS, path string, v writerTo) error {
	var buf bytes.Buffer
	var werr error
	if strings.HasSuffix(path, ".gz") {
		gz := gzip.NewWriter(&buf)
		werr = v.Write(gz)
		if cerr := gz.Close(); werr == nil {
			werr = cerr
		}
	} else {
		werr = v.Write(&buf)
	}
	if werr != nil {
		return fmt.Errorf("smformat: write %s: %w", path, werr)
	}
	if err := fsys.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		return fmt.Errorf("smformat: write %s: %w", path, err)
	}
	return nil
}

// readFileFS reads path through the backend and parses it with parse,
// transparently decompressing ".gz" archives.
func readFileFS[T any](fsys FS, path string, parse func(io.Reader) (T, error)) (T, error) {
	var zero T
	data, err := fsys.ReadFile(path)
	if err != nil {
		return zero, fmt.Errorf("smformat: open %s: %w", path, err)
	}
	var r io.Reader = bytes.NewReader(data)
	if strings.HasSuffix(path, ".gz") {
		gz, err := gzip.NewReader(r)
		if err != nil {
			return zero, fmt.Errorf("smformat: decompress %s: %w", path, err)
		}
		defer gz.Close()
		r = gz
	}
	v, err := parse(r)
	if err != nil {
		return zero, fmt.Errorf("smformat: parse %s: %w", path, err)
	}
	return v, nil
}

// WriteV1FileFS writes a multiplexed V1 to path through fsys.
func WriteV1FileFS(fsys FS, path string, v V1) error { return writeFileFS(fsys, path, v) }

// WriteV1ComponentFileFS writes a per-component V1 to path through fsys.
func WriteV1ComponentFileFS(fsys FS, path string, v V1Component) error {
	return writeFileFS(fsys, path, v)
}

// WriteV2FileFS writes a V2 to path through fsys.
func WriteV2FileFS(fsys FS, path string, v V2) error { return writeFileFS(fsys, path, v) }

// WriteFourierFileFS writes an F file to path through fsys.
func WriteFourierFileFS(fsys FS, path string, f Fourier) error { return writeFileFS(fsys, path, f) }

// WriteResponseFileFS writes an R file to path through fsys.
func WriteResponseFileFS(fsys FS, path string, r Response) error { return writeFileFS(fsys, path, r) }

// WriteGEMFileFS writes a GEM export to path through fsys.
func WriteGEMFileFS(fsys FS, path string, g GEM) error { return writeFileFS(fsys, path, g) }

// WriteFileListFileFS writes a file list to path through fsys.
func WriteFileListFileFS(fsys FS, path string, l FileList) error { return writeFileFS(fsys, path, l) }

// WriteFilterParamsFileFS writes a filter-parameter file to path through fsys.
func WriteFilterParamsFileFS(fsys FS, path string, p FilterParams) error {
	return writeFileFS(fsys, path, p)
}

// WriteMaxValuesFileFS writes a max-values file to path through fsys.
func WriteMaxValuesFileFS(fsys FS, path string, m MaxValues) error { return writeFileFS(fsys, path, m) }

// ReadV1FileFS parses the multiplexed V1 at path through fsys.
func ReadV1FileFS(fsys FS, path string) (V1, error) { return readFileFS(fsys, path, ParseV1) }

// ReadV1ComponentFileFS parses the per-component V1 at path through fsys.
func ReadV1ComponentFileFS(fsys FS, path string) (V1Component, error) {
	return readFileFS(fsys, path, ParseV1Component)
}

// ReadV2FileFS parses the V2 at path through fsys.
func ReadV2FileFS(fsys FS, path string) (V2, error) { return readFileFS(fsys, path, ParseV2) }

// ReadFourierFileFS parses the F file at path through fsys.
func ReadFourierFileFS(fsys FS, path string) (Fourier, error) {
	return readFileFS(fsys, path, ParseFourier)
}

// ReadResponseFileFS parses the R file at path through fsys.
func ReadResponseFileFS(fsys FS, path string) (Response, error) {
	return readFileFS(fsys, path, ParseResponse)
}

// ReadGEMFileFS parses the GEM export at path through fsys.
func ReadGEMFileFS(fsys FS, path string) (GEM, error) { return readFileFS(fsys, path, ParseGEM) }

// ReadFileListFileFS parses the file list at path through fsys.
func ReadFileListFileFS(fsys FS, path string) (FileList, error) {
	return readFileFS(fsys, path, ParseFileList)
}

// ReadFilterParamsFileFS parses the filter-parameter file at path through fsys.
func ReadFilterParamsFileFS(fsys FS, path string) (FilterParams, error) {
	return readFileFS(fsys, path, ParseFilterParams)
}

// ReadMaxValuesFileFS parses the max-values file at path through fsys.
func ReadMaxValuesFileFS(fsys FS, path string) (MaxValues, error) {
	return readFileFS(fsys, path, ParseMaxValues)
}
