package smformat

import (
	"encoding/json"
	"fmt"
	"io"

	"accelproc/internal/seismic"
)

// JSON interchange: the legacy text formats above are what the pipeline
// itself speaks, but downstream consumers (web services, Python tooling)
// prefer JSON.  These exporters emit a stable, self-describing schema with
// explicit units; importers validate on the way in.

// v2JSON is the interchange schema of a corrected record.
type v2JSON struct {
	Schema    string     `json:"schema"` // "accelproc.v2/1"
	Station   string     `json:"station"`
	Component string     `json:"component"`
	DTSeconds float64    `json:"dt_seconds"`
	Filter    [4]float64 `json:"filter_corners_hz"` // FSL, FPL, FPH, FSH
	PGA       float64    `json:"pga_gal"`
	PGV       float64    `json:"pgv_cm_s"`
	PGD       float64    `json:"pgd_cm"`
	Accel     []float64  `json:"acceleration_gal"`
	Vel       []float64  `json:"velocity_cm_s"`
	Disp      []float64  `json:"displacement_cm"`
}

// ExportV2JSON writes the corrected record as JSON.
func ExportV2JSON(w io.Writer, v V2) error {
	if err := v.Validate(); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	return enc.Encode(v2JSON{
		Schema:    "accelproc.v2/1",
		Station:   v.Station,
		Component: v.Component.String(),
		DTSeconds: v.DT,
		Filter:    [4]float64{v.Filter.FSL, v.Filter.FPL, v.Filter.FPH, v.Filter.FSH},
		PGA:       v.Peaks.PGA,
		PGV:       v.Peaks.PGV,
		PGD:       v.Peaks.PGD,
		Accel:     v.Accel,
		Vel:       v.Vel,
		Disp:      v.Disp,
	})
}

// ImportV2JSON parses a JSON corrected record.  The peak *times* are not
// part of the interchange schema (consumers recompute them trivially), so
// they come back zero.
func ImportV2JSON(r io.Reader) (V2, error) {
	var j v2JSON
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&j); err != nil {
		return V2{}, fmt.Errorf("smformat: bad V2 JSON: %w", err)
	}
	if j.Schema != "accelproc.v2/1" {
		return V2{}, fmt.Errorf("smformat: unsupported V2 JSON schema %q", j.Schema)
	}
	comp, err := seismic.ParseComponent(j.Component)
	if err != nil {
		return V2{}, err
	}
	v := V2{
		Station:   j.Station,
		Component: comp,
		DT:        j.DTSeconds,
		Accel:     j.Accel,
		Vel:       j.Vel,
		Disp:      j.Disp,
	}
	v.Filter.FSL, v.Filter.FPL, v.Filter.FPH, v.Filter.FSH = j.Filter[0], j.Filter[1], j.Filter[2], j.Filter[3]
	v.Peaks.PGA, v.Peaks.PGV, v.Peaks.PGD = j.PGA, j.PGV, j.PGD
	if err := v.Validate(); err != nil {
		return V2{}, err
	}
	return v, nil
}

// responseJSON is the interchange schema of a response spectrum.
type responseJSON struct {
	Schema    string    `json:"schema"` // "accelproc.response/1"
	Station   string    `json:"station"`
	Component string    `json:"component"`
	Damping   float64   `json:"damping_ratio"`
	Periods   []float64 `json:"periods_s"`
	SA        []float64 `json:"sa_gal"`
	SV        []float64 `json:"sv_cm_s"`
	SD        []float64 `json:"sd_cm"`
}

// ExportResponseJSON writes a response spectrum as JSON.
func ExportResponseJSON(w io.Writer, r Response) error {
	if err := r.Validate(); err != nil {
		return err
	}
	return json.NewEncoder(w).Encode(responseJSON{
		Schema:    "accelproc.response/1",
		Station:   r.Station,
		Component: r.Component.String(),
		Damping:   r.Damping,
		Periods:   r.Periods,
		SA:        r.SA,
		SV:        r.SV,
		SD:        r.SD,
	})
}

// ImportResponseJSON parses a JSON response spectrum.
func ImportResponseJSON(rd io.Reader) (Response, error) {
	var j responseJSON
	dec := json.NewDecoder(rd)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&j); err != nil {
		return Response{}, fmt.Errorf("smformat: bad response JSON: %w", err)
	}
	if j.Schema != "accelproc.response/1" {
		return Response{}, fmt.Errorf("smformat: unsupported response JSON schema %q", j.Schema)
	}
	comp, err := seismic.ParseComponent(j.Component)
	if err != nil {
		return Response{}, err
	}
	r := Response{
		Station:   j.Station,
		Component: comp,
		Damping:   j.Damping,
		Periods:   j.Periods,
		SA:        j.SA,
		SV:        j.SV,
		SD:        j.SD,
	}
	if err := r.Validate(); err != nil {
		return Response{}, err
	}
	return r, nil
}
