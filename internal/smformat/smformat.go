// Package smformat reads and writes the file formats flowing through the
// accelerographic processing pipeline.
//
// The legacy Salvadoran chain stores every intermediate product as a text
// file; the file extensions and naming scheme below come directly from the
// paper (section II and Figure 5):
//
//   - <station>.v1            uncorrected record, three multiplexed components
//   - <station><c>.v1         one uncorrected component (c = l, t, v)
//   - <station><c>.v2         corrected component: acceleration, velocity,
//     displacement plus the filter corners and peak values
//   - <station><c>.f          Fourier amplitude spectra of the corrected
//     component (acceleration, velocity, displacement)
//   - <station><c>.r          elastic response spectra (SA, SV, SD)
//   - <station><c>GEM<2|R><A|V|D>.txt  Global Earthquake Model exports, one
//     quantity per file, six per V2/R pair, 18 per station
//
// plus the small metadata files (file lists, filter parameters, max values)
// that the pipeline's lightweight processes create and consume.
//
// All numeric payloads are written with full float64 precision so that
// write→parse round-trips are exact; tests rely on this.
package smformat

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
)

// valuesPerLine is the number of numeric samples written per payload line.
const valuesPerLine = 4

// linePool recycles the scratch buffers the hot writers format lines into,
// so a steady-state write allocates nothing per value.
var linePool = sync.Pool{New: func() any { b := make([]byte, 0, 256); return &b }}

// writeValues writes a float64 block in fixed-width scientific notation,
// valuesPerLine per row.  Values are appended into pooled scratch instead of
// formatted into per-value strings; the emitted bytes are unchanged.
func writeValues(w *bufio.Writer, data []float64) error {
	bp := linePool.Get().(*[]byte)
	buf := (*bp)[:0]
	defer func() { *bp = buf[:0]; linePool.Put(bp) }()
	for i, v := range data {
		buf = buf[:0]
		if i%valuesPerLine != 0 {
			buf = append(buf, ' ')
		}
		buf = strconv.AppendFloat(buf, v, 'e', 17, 64)
		if (i+1)%valuesPerLine == 0 || i == len(data)-1 {
			buf = append(buf, '\n')
		}
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// valueScanner incrementally parses whitespace-separated float64 payloads.
// Tokens are sliced out of the current line by index — no per-line []string
// from strings.Fields, no per-token copies — which matters on the payload
// blocks, where a 56K-point record spans 14K lines.
type valueScanner struct {
	sc   *bufio.Scanner
	line int
	buf  string // current payload line
	pos  int    // scan offset into buf
}

func newValueScanner(sc *bufio.Scanner, line int) *valueScanner {
	return &valueScanner{sc: sc, line: line}
}

func isValueSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\r' }

// next returns the next numeric token.
func (v *valueScanner) next() (float64, error) {
	for {
		for v.pos < len(v.buf) && isValueSpace(v.buf[v.pos]) {
			v.pos++
		}
		if v.pos < len(v.buf) {
			break
		}
		if !v.sc.Scan() {
			if err := v.sc.Err(); err != nil {
				return 0, err
			}
			return 0, syntaxErrf(v.line, "unexpected end of file in value block")
		}
		v.line++
		v.buf = v.sc.Text()
		v.pos = 0
	}
	start := v.pos
	for v.pos < len(v.buf) && !isValueSpace(v.buf[v.pos]) {
		v.pos++
	}
	tok := v.buf[start:v.pos]
	x, err := strconv.ParseFloat(tok, 64)
	if err != nil {
		return 0, syntaxErrf(v.line, "bad numeric value %q: %v", tok, err)
	}
	return x, nil
}

// readBlock reads exactly n values.  The pre-allocation is capped so a
// hostile count header cannot reserve gigabytes before any value has been
// read.
func (v *valueScanner) readBlock(n int) ([]float64, error) {
	capHint := n
	if capHint > 1<<16 {
		capHint = 1 << 16
	}
	out := make([]float64, 0, capHint)
	for i := 0; i < n; i++ {
		x, err := v.next()
		if err != nil {
			return nil, err
		}
		out = append(out, x)
	}
	return out, nil
}

// headerReader parses "KEY: value" header lines.
type headerReader struct {
	sc   *bufio.Scanner
	line int
}

// expect reads one line and requires it to have the given key, returning
// the trimmed value.
func (h *headerReader) expect(key string) (string, error) {
	if !h.sc.Scan() {
		if err := h.sc.Err(); err != nil {
			return "", err
		}
		return "", syntaxErrf(h.line+1, "unexpected end of file, want %q header", key)
	}
	h.line++
	text := h.sc.Text()
	k, v, ok := strings.Cut(text, ":")
	if !ok || strings.TrimSpace(k) != key {
		return "", syntaxErrf(h.line, "got %q, want %q header", text, key)
	}
	return strings.TrimSpace(v), nil
}

func (h *headerReader) expectInt(key string) (int, error) {
	v, err := h.expect(key)
	if err != nil {
		return 0, err
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, syntaxErrf(h.line, "%s: bad integer %q", key, v)
	}
	return n, nil
}

func (h *headerReader) expectFloat(key string) (float64, error) {
	v, err := h.expect(key)
	if err != nil {
		return 0, err
	}
	x, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, syntaxErrf(h.line, "%s: bad number %q", key, v)
	}
	return x, nil
}

func writeHeader(w *bufio.Writer, key, value string) error {
	_, err := fmt.Fprintf(w, "%s: %s\n", key, value)
	return err
}

func writeHeaderFloat(w *bufio.Writer, key string, v float64) error {
	return writeHeader(w, key, strconv.FormatFloat(v, 'e', 17, 64))
}

func writeHeaderInt(w *bufio.Writer, key string, v int) error {
	return writeHeader(w, key, strconv.Itoa(v))
}

// flush finalizes a buffered writer, preserving any earlier write error.
func flush(w *bufio.Writer, err error) error {
	if err != nil {
		return err
	}
	return w.Flush()
}

// newScanner builds a line scanner with a buffer large enough for the
// longest header or payload lines these formats produce.
func newScanner(r io.Reader) *bufio.Scanner {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	return sc
}
