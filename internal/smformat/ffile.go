package smformat

import (
	"bufio"
	"fmt"
	"io"

	"accelproc/internal/seismic"
)

const fourierMagic = "STRONG-MOTION FOURIER SPECTRA F"

// Fourier is the <station><c>.f product of pipeline process #7: single-sided
// Fourier amplitude spectra of the corrected acceleration, velocity, and
// displacement traces of one component, on a common frequency grid.
type Fourier struct {
	Station   string
	Component seismic.Component
	DF        float64   // frequency step, Hz
	Accel     []float64 // |A(f)|, gal*s
	Vel       []float64 // |V(f)|, cm
	Disp      []float64 // |D(f)|, cm*s
}

// Frequency returns the frequency of bin k in Hz.
func (f Fourier) Frequency(k int) float64 { return float64(k) * f.DF }

// Validate checks internal consistency.
func (f Fourier) Validate() error {
	if f.Station == "" {
		return fmt.Errorf("smformat: Fourier file with empty station")
	}
	if f.DF <= 0 {
		return fmt.Errorf("smformat: Fourier %s%s with non-positive DF %g", f.Station, f.Component.Suffix(), f.DF)
	}
	n := len(f.Accel)
	if n == 0 {
		return fmt.Errorf("smformat: Fourier %s%s has no bins", f.Station, f.Component.Suffix())
	}
	if len(f.Vel) != n || len(f.Disp) != n {
		return fmt.Errorf("smformat: Fourier %s%s spectra lengths differ (acc %d, vel %d, disp %d)",
			f.Station, f.Component.Suffix(), n, len(f.Vel), len(f.Disp))
	}
	return nil
}

// Write serializes the F file.
func (f Fourier) Write(w io.Writer) error {
	if err := f.Validate(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	err := func() error {
		if _, err := fmt.Fprintln(bw, fourierMagic); err != nil {
			return err
		}
		if err := writeHeader(bw, "STATION", f.Station); err != nil {
			return err
		}
		if err := writeHeader(bw, "COMPONENT", f.Component.String()); err != nil {
			return err
		}
		if err := writeHeaderFloat(bw, "DF", f.DF); err != nil {
			return err
		}
		if err := writeHeaderInt(bw, "NFREQ", len(f.Accel)); err != nil {
			return err
		}
		for _, block := range []struct {
			name string
			data []float64
		}{
			{"ACCELERATION", f.Accel}, {"VELOCITY", f.Vel}, {"DISPLACEMENT", f.Disp},
		} {
			if err := writeHeader(bw, "BLOCK", block.name); err != nil {
				return err
			}
			if err := writeValues(bw, block.data); err != nil {
				return err
			}
		}
		return nil
	}()
	return flush(bw, err)
}

// ParseFourier reads an F file.
func ParseFourier(r io.Reader) (Fourier, error) {
	sc := newScanner(r)
	if !sc.Scan() || sc.Text() != fourierMagic {
		return Fourier{}, fmt.Errorf("smformat: not an F file (missing %q)", fourierMagic)
	}
	h := &headerReader{sc: sc, line: 1}
	var f Fourier
	var err error
	if f.Station, err = h.expect("STATION"); err != nil {
		return Fourier{}, err
	}
	compName, err := h.expect("COMPONENT")
	if err != nil {
		return Fourier{}, err
	}
	if f.Component, err = seismic.ParseComponent(compName); err != nil {
		return Fourier{}, err
	}
	if f.DF, err = h.expectFloat("DF"); err != nil {
		return Fourier{}, err
	}
	nfreq, err := h.expectInt("NFREQ")
	if err != nil {
		return Fourier{}, err
	}
	if nfreq <= 0 {
		return Fourier{}, fmt.Errorf("smformat: Fourier %s: NFREQ %d must be positive", f.Station, nfreq)
	}
	for _, block := range []struct {
		name string
		dst  *[]float64
	}{
		{"ACCELERATION", &f.Accel}, {"VELOCITY", &f.Vel}, {"DISPLACEMENT", &f.Disp},
	} {
		name, err := h.expect("BLOCK")
		if err != nil {
			return Fourier{}, err
		}
		if name != block.name {
			return Fourier{}, fmt.Errorf("smformat: Fourier %s: block %q, want %q", f.Station, name, block.name)
		}
		vs := newValueScanner(sc, h.line)
		if *block.dst, err = vs.readBlock(nfreq); err != nil {
			return Fourier{}, fmt.Errorf("smformat: Fourier %s%s block %s: %w", f.Station, f.Component.Suffix(), name, err)
		}
		h.line = vs.line
	}
	if err := f.Validate(); err != nil {
		return Fourier{}, err
	}
	return f, nil
}
