package smformat

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"accelproc/internal/dsp"
	"accelproc/internal/seismic"
)

func benchV2(n int) V2 {
	rng := rand.New(rand.NewSource(7))
	return V2{
		Station:   "SS01",
		Component: seismic.Longitudinal,
		DT:        0.01,
		Filter:    dsp.BandPassSpec{FSL: 0.1, FPL: 0.25, FPH: 23, FSH: 25},
		Accel:     randData(rng, n),
		Vel:       randData(rng, n),
		Disp:      randData(rng, n),
	}
}

// BenchmarkV2Write measures serialization of the pipeline's dominant I/O
// product at typical record lengths.
func BenchmarkV2Write(b *testing.B) {
	for _, n := range []int{7300, 20000} {
		n := n
		v := benchV2(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var buf bytes.Buffer
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				buf.Reset()
				if err := v.Write(&buf); err != nil {
					b.Fatal(err)
				}
			}
			b.SetBytes(int64(buf.Len()))
		})
	}
}

func BenchmarkV2Parse(b *testing.B) {
	v := benchV2(20000)
	var buf bytes.Buffer
	if err := v.Write(&buf); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ParseV2(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkV1Write(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	v := V1{
		Station: "SS01",
		DT:      0.01,
		Accel:   [3][]float64{randData(rng, 20000), randData(rng, 20000), randData(rng, 20000)},
	}
	var buf bytes.Buffer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := v.Write(&buf); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(buf.Len()))
}

// TestV2AllocContract56K pins the allocation behavior of the hot codec on a
// long record (56K points, the upper end of the paper's event files):
//
//   - Write formats every value into pooled scratch, so its alloc count is a
//     small constant — independent of record length.
//   - Parse allocates one line string from the scanner plus the payload
//     slices and headers; the index-based token splitting adds nothing per
//     line (the old strings.Fields path added one []string per line).
//
// The bounds are contracts, not measurements: a regression that reintroduces
// per-value or extra per-line allocation trips them immediately.
func TestV2AllocContract56K(t *testing.T) {
	const n = 56000
	v := benchV2(n)
	var buf bytes.Buffer
	if err := v.Write(&buf); err != nil {
		t.Fatal(err)
	}
	data := append([]byte(nil), buf.Bytes()...)
	lines := bytes.Count(data, []byte("\n"))

	writeAllocs := testing.AllocsPerRun(5, func() {
		buf.Reset()
		if err := v.Write(&buf); err != nil {
			t.Fatal(err)
		}
	})
	if writeAllocs > 64 {
		t.Errorf("V2.Write(56K points) = %.0f allocs/op, want a small constant (<= 64)", writeAllocs)
	}

	parseAllocs := testing.AllocsPerRun(5, func() {
		if _, err := ParseV2(bytes.NewReader(data)); err != nil {
			t.Fatal(err)
		}
	})
	if max := float64(lines) + 64; parseAllocs > max {
		t.Errorf("ParseV2(56K points) = %.0f allocs/op over %d lines, want <= %.0f (one per line plus a constant)", parseAllocs, lines, max)
	}
}

func BenchmarkGEMWrite(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	n := 20000
	t := make([]float64, n)
	for i := range t {
		t[i] = float64(i) * 0.01
	}
	g := GEM{
		Station: "SS01", Component: seismic.Longitudinal,
		Kind: GEMFromV2, Quantity: GEMAcceleration,
		Abscissa: t, Values: randData(rng, n),
	}
	var buf bytes.Buffer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := g.Write(&buf); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(buf.Len()))
}
