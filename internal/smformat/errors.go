package smformat

import (
	"errors"
	"fmt"
)

// ErrFormat is the root sentinel for every malformed-file error this
// package produces.  Callers that only care whether a parse failure was
// structural (as opposed to an I/O error) test errors.Is(err, ErrFormat);
// callers that need the position extract the *SyntaxError with errors.As.
var ErrFormat = errors.New("smformat: malformed file")

// SyntaxError is a structural parse failure at a known line of the input.
// It wraps ErrFormat so the whole taxonomy is reachable through errors.Is,
// which the pipeline's retry/quarantine classifier relies on: a syntax
// error is permanent — retrying the same bytes cannot succeed.
type SyntaxError struct {
	Line int    // 1-based line of the offending input, 0 if unknown
	Msg  string // human-readable description
}

func (e *SyntaxError) Error() string {
	if e.Line > 0 {
		return fmt.Sprintf("smformat: line %d: %s", e.Line, e.Msg)
	}
	return "smformat: " + e.Msg
}

func (e *SyntaxError) Unwrap() error { return ErrFormat }

// syntaxErrf builds a *SyntaxError with a formatted message.
func syntaxErrf(line int, format string, args ...any) error {
	return &SyntaxError{Line: line, Msg: fmt.Sprintf(format, args...)}
}
