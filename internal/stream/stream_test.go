package stream

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"accelproc/internal/storage"
)

func newTestStream(t *testing.T, ws storage.Workspace, window int) (*Stream, *Pool, string) {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "spill")
	if err := ws.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	pool := NewPool(8)
	return New(ws, dir, window, pool), pool, dir
}

func send(t *testing.T, s *Stream, pool *Pool, comp int, vals ...float64) {
	t.Helper()
	c := pool.Get(comp)
	c.Data = append(c.Data, vals...)
	if err := s.Send(c); err != nil {
		t.Fatal(err)
	}
}

func TestStreamOrderAndEOF(t *testing.T) {
	s, pool, _ := newTestStream(t, storage.OS{}, 2)
	for i := 0; i < 10; i++ {
		send(t, s, pool, i%3, float64(i), float64(i)+0.5)
	}
	s.Close(nil)
	for i := 0; i < 10; i++ {
		c, err := s.Recv()
		if err != nil {
			t.Fatalf("chunk %d: %v", i, err)
		}
		if c.Comp != i%3 || len(c.Data) != 2 || c.Data[0] != float64(i) || c.Data[1] != float64(i)+0.5 {
			t.Fatalf("chunk %d out of order: comp=%d data=%v", i, c.Comp, c.Data)
		}
		c.Release()
	}
	if _, err := s.Recv(); err != io.EOF {
		t.Fatalf("after close: %v, want io.EOF", err)
	}
}

// TestStreamSpillRoundTrip forces every chunk past the window and checks
// bit-exact float64 recovery plus spill-file cleanup.
func TestStreamSpillRoundTrip(t *testing.T) {
	for _, ws := range []storage.Workspace{storage.OS{}, storage.NewMem()} {
		s, pool, dir := newTestStream(t, ws, 1)
		vals := []float64{0, -0.1, 1e-300, -1e300, 3.141592653589793}
		for i := 0; i < 6; i++ {
			send(t, s, pool, 1, vals[i%len(vals)], float64(i))
		}
		if s.Spilled() == 0 {
			t.Fatal("window 1 with 6 sends should have spilled")
		}
		s.Close(nil)
		for i := 0; i < 6; i++ {
			c, err := s.Recv()
			if err != nil {
				t.Fatal(err)
			}
			if c.Data[0] != vals[i%len(vals)] || c.Data[1] != float64(i) {
				t.Fatalf("chunk %d: %v", i, c.Data)
			}
			c.Release()
		}
		if _, err := s.Recv(); err != io.EOF {
			t.Fatal(err)
		}
		// All spill files must be consumed and removed.
		entries, err := ws.List(dir)
		if err == nil && len(entries) != 0 {
			t.Fatalf("%d spill files left behind", len(entries))
		}
	}
}

func TestStreamErrFallback(t *testing.T) {
	s, _, _ := newTestStream(t, storage.OS{}, 2)
	s.Close(ErrFallback)
	if _, err := s.Header(); !errors.Is(err, ErrFallback) {
		t.Fatalf("Header after fallback close: %v", err)
	}
	if _, err := s.Recv(); !errors.Is(err, ErrFallback) {
		t.Fatalf("Recv after fallback close: %v", err)
	}
}

func TestStreamFirstCloseReasonWins(t *testing.T) {
	s, _, _ := newTestStream(t, storage.OS{}, 2)
	s.Close(nil)
	s.Close(ErrFallback)
	if _, err := s.Recv(); err != io.EOF {
		t.Fatalf("second close reason displaced the first: %v", err)
	}

	s2, _, _ := newTestStream(t, storage.OS{}, 2)
	boom := fmt.Errorf("boom")
	s2.Close(boom)
	s2.Close(nil)
	if _, err := s2.Recv(); !errors.Is(err, boom) {
		t.Fatalf("nil close displaced the error: %v", err)
	}
}

func TestStreamHeader(t *testing.T) {
	s, _, _ := newTestStream(t, storage.OS{}, 2)
	var wg sync.WaitGroup
	wg.Add(1)
	var got any
	var gotErr error
	go func() {
		defer wg.Done()
		got, gotErr = s.Header()
	}()
	s.SetHeader("hdr")
	wg.Wait()
	if gotErr != nil || got != "hdr" {
		t.Fatalf("Header() = %v, %v", got, gotErr)
	}
	// Clean close without header: io.EOF.
	s2, _, _ := newTestStream(t, storage.OS{}, 2)
	s2.Close(nil)
	if _, err := s2.Header(); err != io.EOF {
		t.Fatalf("headerless clean close: %v", err)
	}
}

// TestStreamSendNeverBlocks pins the deadlock-freedom property: a producer
// with no consumer completes arbitrarily many sends.
func TestStreamSendNeverBlocks(t *testing.T) {
	s, pool, _ := newTestStream(t, storage.OS{}, 2)
	for i := 0; i < 500; i++ {
		send(t, s, pool, 0, float64(i))
	}
	s.Close(nil)
	n := 0
	err := s.Drain(func(c *Chunk) error {
		if c.Data[0] != float64(n) {
			return fmt.Errorf("chunk %d holds %v", n, c.Data)
		}
		n++
		return nil
	})
	if err != nil || n != 500 {
		t.Fatalf("drained %d chunks, err %v", n, err)
	}
}

// TestStreamConcurrentProducerConsumer runs both sides at full speed; under
// -race this doubles as the data-race gate for the SPSC protocol.
func TestStreamConcurrentProducerConsumer(t *testing.T) {
	s, pool, _ := newTestStream(t, storage.OS{}, 4)
	const chunks = 2000
	go func() {
		for i := 0; i < chunks; i++ {
			c := pool.Get(i % 3)
			c.Data = append(c.Data, float64(i))
			if err := s.Send(c); err != nil {
				s.Close(err)
				return
			}
		}
		s.SetHeader(chunks)
		s.Close(nil)
	}()
	h, err := s.Header()
	if err != nil {
		t.Fatal(err)
	}
	if h.(int) != chunks {
		t.Fatalf("header %v", h)
	}
	n := 0
	err = s.Drain(func(c *Chunk) error {
		if c.Comp != n%3 || c.Data[0] != float64(n) {
			return fmt.Errorf("chunk %d: comp=%d data=%v", n, c.Comp, c.Data)
		}
		n++
		return nil
	})
	if err != nil || n != chunks {
		t.Fatalf("drained %d, err %v", n, err)
	}
}

func TestChunkRefcounting(t *testing.T) {
	pool := NewPool(4)
	c := pool.Get(2)
	c.Data = append(c.Data, 1, 2)
	c.Retain()
	c.Release()
	// Still referenced: the data must be intact.
	if len(c.Data) != 2 || c.Data[0] != 1 {
		t.Fatalf("retained chunk mutated: %v", c.Data)
	}
	c.Release()
	// Recycled: the next Get may return the same buffer, reset.
	c2 := pool.Get(0)
	if len(c2.Data) != 0 || c2.Comp != 0 {
		t.Fatalf("recycled chunk not reset: comp=%d data=%v", c2.Comp, c2.Data)
	}
}

func TestBudgetBytes(t *testing.T) {
	if got := BudgetBytes(DefaultChunkLen, DefaultWindow); got != 8192*8*4 {
		t.Fatalf("BudgetBytes = %d", got)
	}
}

func TestMain(m *testing.M) { os.Exit(m.Run()) }
