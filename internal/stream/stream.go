// Package stream is the streaming execution plane's transport: pooled,
// reference-counted fixed-size chunk buffers and order-aware
// single-producer/single-consumer channels layered over the storage
// Workspace.
//
// A Stream connects one producer node to one consumer node of the dataflow
// graph (a "stream edge"): the producer emits a record's samples as chunks
// in order, the consumer receives them in the same order, and the pair run
// concurrently — stage N starts before stage N-1 finishes, the order-aware
// dataflow model of PaSh applied to record processing.
//
// Backpressure is a per-stream chunk budget rather than a blocking channel:
// Send never blocks.  Up to Window chunks ride in memory; overflow spills to
// per-chunk files under the stream's scratch directory via Workspace.Create
// and is read back (and deleted) by the consumer in FIFO order.  Never
// blocking the producer is what makes streams deadlock-free at any worker
// count: a dispatched producer always runs to completion even when its
// consumer has no worker yet, so a single-worker executor simply degrades to
// ordered execution with a fully spilled stream.
package stream

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"path/filepath"
	"sync"
	"sync/atomic"

	"accelproc/internal/storage"
)

// Default chunk geometry: 8192 float64 samples per chunk (64 KiB) with a
// 4-chunk in-memory window per stream, a 256 KiB per-stream budget.
const (
	DefaultChunkLen = 8192
	DefaultWindow   = 4
)

// BudgetBytes returns the in-memory byte budget of one stream with the
// given geometry: the bound the memory ablation asserts StorageBytesPeak
// against as NPTS grows.
func BudgetBytes(chunkLen, window int) int64 {
	return int64(chunkLen) * 8 * int64(window)
}

// ErrFallback is the close reason a producer reports when it did not stream:
// its outputs are durable artifacts (it was resume-skipped, served from the
// action cache, or took a non-streaming code path), and the consumer must
// read them from the Workspace instead.
var ErrFallback = errors.New("stream: producer fell back to durable artifacts")

// Pool hands out fixed-capacity chunks and recycles released ones.  Safe for
// concurrent use; one pool is shared by every stream of a run.
type Pool struct {
	chunkLen int
	p        sync.Pool
}

// NewPool returns a pool of chunks holding up to chunkLen samples each.
// Non-positive values select DefaultChunkLen.
func NewPool(chunkLen int) *Pool {
	if chunkLen <= 0 {
		chunkLen = DefaultChunkLen
	}
	p := &Pool{chunkLen: chunkLen}
	p.p.New = func() any {
		return &Chunk{pool: p, Data: make([]float64, 0, chunkLen)}
	}
	return p
}

// ChunkLen returns the sample capacity of this pool's chunks.
func (p *Pool) ChunkLen() int { return p.chunkLen }

// Get returns an empty chunk tagged with the given component index, with one
// reference held by the caller.
func (p *Pool) Get(comp int) *Chunk {
	c := p.p.Get().(*Chunk)
	c.Comp = comp
	c.Data = c.Data[:0]
	c.refs.Store(1)
	return c
}

// Chunk is one fixed-capacity run of consecutive samples of a single
// component.  Data's capacity is the pool's chunk length; its length is how
// many samples this chunk carries (only the final chunk of a component runs
// short).  Chunks are reference-counted so a producer can both send a chunk
// downstream and keep using it: Retain before sharing, Release when done —
// the last release returns the buffer to the pool.
type Chunk struct {
	// Comp tags which component's samples these are (the seismic L/T/V
	// index), so one stream can carry a whole record's components in
	// canonical order.
	Comp int
	Data []float64

	refs atomic.Int32
	pool *Pool
}

// Retain adds a reference.
func (c *Chunk) Retain() { c.refs.Add(1) }

// Release drops a reference; the last one recycles the chunk.
func (c *Chunk) Release() {
	if c.refs.Add(-1) == 0 && c.pool != nil {
		c.pool.p.Put(c)
	}
}

// item is one queue slot: an inline chunk, or a reference to a spilled
// chunk file.
type item struct {
	c     *Chunk
	spill string
	comp  int
	n     int
}

// Stream is an order-aware SPSC chunk channel.  Exactly one goroutine calls
// Send/SetHeader/Close and exactly one calls Header/Recv; the two sides may
// run concurrently.
type Stream struct {
	ws       storage.Workspace
	spillDir string
	window   int
	pool     *Pool

	mu        sync.Mutex
	cond      *sync.Cond
	q         []item
	inline    int // inline chunks currently queued
	spillSeq  int
	spilled   int64 // total chunks spilled (stats)
	header    any
	headerSet bool
	closed    bool
	err       error

	wbuf []byte // producer-side spill encode buffer
	rbuf []byte // consumer-side spill decode buffer
}

// New returns a stream drawing chunks from pool, spilling overflow beyond
// window in-memory chunks to per-chunk files under spillDir (which must
// exist).  Non-positive window selects DefaultWindow.
func New(ws storage.Workspace, spillDir string, window int, pool *Pool) *Stream {
	if window <= 0 {
		window = DefaultWindow
	}
	s := &Stream{ws: ws, spillDir: spillDir, window: window, pool: pool}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// SetHeader publishes the producer's header value (record metadata the
// consumer needs before or after the samples).  Call at most once, before
// Close.
func (s *Stream) SetHeader(h any) {
	s.mu.Lock()
	s.header = h
	s.headerSet = true
	s.mu.Unlock()
	s.cond.Broadcast()
}

// Header blocks until the producer publishes a header or closes the stream.
// A close without a header yields the close error (ErrFallback included);
// a clean close without a header yields io.EOF.
func (s *Stream) Header() (any, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for !s.headerSet && !s.closed {
		s.cond.Wait()
	}
	if s.headerSet {
		return s.header, nil
	}
	if s.err != nil {
		return nil, s.err
	}
	return nil, io.EOF
}

// Send enqueues c, consuming the caller's reference.  It never blocks: when
// the in-memory window is full the chunk spills to its own file under the
// spill directory and is read back by Recv in order.  Send reports spill I/O
// errors; the producer should abort and Close with the error.
func (s *Stream) Send(c *Chunk) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		c.Release()
		return errors.New("stream: send on closed stream")
	}
	if s.inline < s.window {
		s.q = append(s.q, item{c: c})
		s.inline++
		s.mu.Unlock()
		s.cond.Broadcast()
		return nil
	}
	s.spillSeq++
	s.spilled++
	path := filepath.Join(s.spillDir, fmt.Sprintf("c%06d.spill", s.spillSeq))
	s.mu.Unlock()

	// Encode outside the lock: the producer is the only writer of wbuf and
	// the only goroutine that appends to the queue, so FIFO order holds.
	if err := s.writeSpill(path, c); err != nil {
		c.Release()
		return err
	}
	it := item{spill: path, comp: c.Comp, n: len(c.Data)}
	c.Release()
	s.mu.Lock()
	s.q = append(s.q, it)
	s.mu.Unlock()
	s.cond.Broadcast()
	return nil
}

// Close ends the stream.  A nil err is a clean end (Recv drains the queue
// and then reports io.EOF); ErrFallback tells the consumer to read durable
// artifacts instead; any other error propagates to the consumer's Recv.
// Closing twice keeps the first reason.
func (s *Stream) Close(err error) {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		s.err = err
	}
	s.mu.Unlock()
	s.cond.Broadcast()
}

// Spilled reports how many chunks overflowed the in-memory window.
func (s *Stream) Spilled() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.spilled
}

// Recv returns the next chunk in order; the caller owns one reference and
// must Release it.  It blocks until a chunk is available or the producer
// closes: a clean close yields (nil, io.EOF) once the queue drains, an
// error close yields (nil, err) — ErrFallback meaning "read the durable
// artifacts instead".
func (s *Stream) Recv() (*Chunk, error) {
	s.mu.Lock()
	for len(s.q) == 0 && !s.closed {
		s.cond.Wait()
	}
	if len(s.q) == 0 {
		err := s.err
		s.mu.Unlock()
		if err == nil {
			err = io.EOF
		}
		return nil, err
	}
	it := s.q[0]
	s.q[0] = item{}
	s.q = s.q[1:]
	if it.c != nil {
		s.inline--
		s.mu.Unlock()
		s.cond.Broadcast()
		return it.c, nil
	}
	s.mu.Unlock()
	c, err := s.readSpill(it)
	if err != nil {
		return nil, err
	}
	return c, nil
}

// spillHeader is the fixed prefix of a spill file: component tag and sample
// count, little-endian uint32 each.
const spillHeaderLen = 8

// writeSpill encodes c to its own file: raw little-endian float64 bits, an
// exact round-trip.  Written through Workspace.Create so spilled chunks are
// never resident on the mem backend and partially written spills are
// invisible.
func (s *Stream) writeSpill(path string, c *Chunk) error {
	need := spillHeaderLen + 8*len(c.Data)
	if cap(s.wbuf) < need {
		s.wbuf = make([]byte, need)
	}
	buf := s.wbuf[:need]
	binary.LittleEndian.PutUint32(buf[0:4], uint32(c.Comp))
	binary.LittleEndian.PutUint32(buf[4:8], uint32(len(c.Data)))
	for i, v := range c.Data {
		binary.LittleEndian.PutUint64(buf[spillHeaderLen+8*i:], math.Float64bits(v))
	}
	w, err := s.ws.Create(path)
	if err != nil {
		return err
	}
	if _, err := w.Write(buf); err != nil {
		w.Close()
		return err
	}
	return w.Close()
}

// readSpill decodes one spilled chunk back into a pooled buffer and removes
// the spill file.
func (s *Stream) readSpill(it item) (*Chunk, error) {
	r, err := s.ws.Open(it.spill)
	if err != nil {
		return nil, err
	}
	need := spillHeaderLen + 8*it.n
	if cap(s.rbuf) < need {
		s.rbuf = make([]byte, need)
	}
	buf := s.rbuf[:need]
	if _, err := io.ReadFull(r, buf); err != nil {
		r.Close()
		return nil, err
	}
	r.Close()
	if got := int(binary.LittleEndian.Uint32(buf[4:8])); got != it.n {
		return nil, fmt.Errorf("stream: spill %s holds %d samples, want %d", it.spill, got, it.n)
	}
	c := s.pool.Get(it.comp)
	c.Data = c.Data[:it.n]
	for i := range c.Data {
		c.Data[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[spillHeaderLen+8*i:]))
	}
	_ = s.ws.Remove(it.spill)
	return c, nil
}

// Drain receives every remaining chunk, invoking f on each (the callback
// must not retain the chunk unless it Retains it), and returns the close
// reason: nil on a clean end, ErrFallback or the producer's error
// otherwise.
func (s *Stream) Drain(f func(*Chunk) error) error {
	for {
		c, err := s.Recv()
		if err != nil {
			if err == io.EOF {
				return nil
			}
			return err
		}
		err = f(c)
		c.Release()
		if err != nil {
			return err
		}
	}
}
