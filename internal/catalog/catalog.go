// Package catalog aggregates the products of processed events into a
// strong-motion repository view: per-station peak histories, per-event
// summaries, and exceedance queries.
//
// The paper motivates the processing chain with the Salvadoran
// Accelerographic Repository — 6,787 records from 1,615 events, growing by
// hundreds of events per month — whose value lies in exactly this kind of
// aggregation.  A Catalog is built by scanning processed work directories
// (the output state the pipeline leaves behind) and supports the queries an
// observatory answers routinely: which station saw the largest PGA, how
// often a threshold was exceeded, what the strongest response at a period
// band was.
package catalog

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"accelproc/internal/seismic"
	"accelproc/internal/smformat"
)

// RecordEntry is the catalog's view of one processed component signal.
type RecordEntry struct {
	Event     string // event name (the work directory's base name)
	Station   string
	Component seismic.Component
	Peaks     seismic.PeakValues
	// Filter is the band-pass actually applied to the definitive V2.
	Filter struct{ FSL, FPL, FPH, FSH float64 }
	// PeakSA is the largest spectral acceleration over the R file's period
	// grid, with its period.
	PeakSA       float64
	PeakSAPeriod float64
}

// Catalog is an in-memory aggregation of processed events.
type Catalog struct {
	entries []RecordEntry
	events  map[string]bool
}

// New returns an empty catalog.
func New() *Catalog {
	return &Catalog{events: make(map[string]bool)}
}

// Len returns the number of component entries in the catalog.
func (c *Catalog) Len() int { return len(c.entries) }

// Events returns the ingested event names, sorted.
func (c *Catalog) Events() []string {
	out := make([]string, 0, len(c.events))
	for e := range c.events {
		out = append(out, e)
	}
	sort.Strings(out)
	return out
}

// Entries returns a copy of all entries, ordered by (event, station,
// component).
func (c *Catalog) Entries() []RecordEntry {
	out := append([]RecordEntry(nil), c.entries...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Event != out[j].Event {
			return out[i].Event < out[j].Event
		}
		if out[i].Station != out[j].Station {
			return out[i].Station < out[j].Station
		}
		return out[i].Component < out[j].Component
	})
	return out
}

// IngestDir scans one processed work directory (a directory the pipeline
// has completed) and adds its records under the given event name.  The
// directory must contain the max-values metadata and the per-component V2
// and R products; a directory that was never processed is rejected.
func (c *Catalog) IngestDir(dir, event string) error {
	if event == "" {
		event = filepath.Base(dir)
	}
	if c.events[event] {
		return fmt.Errorf("catalog: event %q already ingested", event)
	}
	max, err := smformat.ReadMaxValuesFile(filepath.Join(dir, smformat.MaxValuesFile))
	if err != nil {
		return fmt.Errorf("catalog: %s is not a processed work directory: %w", dir, err)
	}
	var entries []RecordEntry
	for key, peaks := range max.Peaks {
		entry := RecordEntry{
			Event:     event,
			Station:   key.Station,
			Component: key.Component,
			Peaks:     peaks,
		}
		v2, err := smformat.ReadV2File(filepath.Join(dir, smformat.V2FileName(key.Station, key.Component)))
		if err != nil {
			return fmt.Errorf("catalog: event %s: %w", event, err)
		}
		entry.Filter.FSL, entry.Filter.FPL = v2.Filter.FSL, v2.Filter.FPL
		entry.Filter.FPH, entry.Filter.FSH = v2.Filter.FPH, v2.Filter.FSH
		r, err := smformat.ReadResponseFile(filepath.Join(dir, smformat.ResponseFileName(key.Station, key.Component)))
		if err != nil {
			return fmt.Errorf("catalog: event %s: %w", event, err)
		}
		for i, sa := range r.SA {
			if sa > entry.PeakSA {
				entry.PeakSA = sa
				entry.PeakSAPeriod = r.Periods[i]
			}
		}
		entries = append(entries, entry)
	}
	if len(entries) == 0 {
		return fmt.Errorf("catalog: event %s has no records", event)
	}
	c.entries = append(c.entries, entries...)
	c.events[event] = true
	return nil
}

// IngestAll ingests every immediate subdirectory of root that looks like a
// processed work directory, using the subdirectory name as the event name.
// Unprocessed subdirectories are skipped; the count of ingested events is
// returned.
func (c *Catalog) IngestAll(root string) (int, error) {
	entries, err := os.ReadDir(root)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		dir := filepath.Join(root, e.Name())
		if _, err := os.Stat(filepath.Join(dir, smformat.MaxValuesFile)); err != nil {
			continue // not processed
		}
		if err := c.IngestDir(dir, e.Name()); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

// MaxPGA returns the entry with the largest PGA, or false for an empty
// catalog.
func (c *Catalog) MaxPGA() (RecordEntry, bool) {
	var best RecordEntry
	found := false
	for _, e := range c.entries {
		if !found || e.Peaks.PGA > best.Peaks.PGA {
			best, found = e, true
		}
	}
	return best, found
}

// ExceedanceCount returns how many component records have PGA at or above
// the threshold (gal).
func (c *Catalog) ExceedanceCount(thresholdGal float64) int {
	n := 0
	for _, e := range c.entries {
		if e.Peaks.PGA >= thresholdGal {
			n++
		}
	}
	return n
}

// StationHistory returns the entries of one station across all events,
// ordered by event name.
func (c *Catalog) StationHistory(station string) []RecordEntry {
	var out []RecordEntry
	for _, e := range c.entries {
		if e.Station == station {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Event != out[j].Event {
			return out[i].Event < out[j].Event
		}
		return out[i].Component < out[j].Component
	})
	return out
}

// StationStats summarizes one station's catalog presence.
type StationStats struct {
	Station     string
	Records     int     // component entries
	Events      int     // distinct events
	MaxPGA      float64 // gal
	MaxPGAEvent string
}

// Stations returns per-station statistics, sorted by station code.
func (c *Catalog) Stations() []StationStats {
	byStation := map[string]*StationStats{}
	events := map[string]map[string]bool{}
	for _, e := range c.entries {
		st, ok := byStation[e.Station]
		if !ok {
			st = &StationStats{Station: e.Station}
			byStation[e.Station] = st
			events[e.Station] = map[string]bool{}
		}
		st.Records++
		events[e.Station][e.Event] = true
		if e.Peaks.PGA > st.MaxPGA {
			st.MaxPGA = e.Peaks.PGA
			st.MaxPGAEvent = e.Event
		}
	}
	out := make([]StationStats, 0, len(byStation))
	for name, st := range byStation {
		st.Events = len(events[name])
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Station < out[j].Station })
	return out
}

// Report renders a human-readable catalog summary.
func (c *Catalog) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "catalog: %d events, %d component records, %d stations\n",
		len(c.events), len(c.entries), len(c.Stations()))
	if best, ok := c.MaxPGA(); ok {
		fmt.Fprintf(&b, "largest PGA: %.1f gal at %s%s during %s (SA peak %.1f gal at T=%.2f s)\n",
			best.Peaks.PGA, best.Station, best.Component.Suffix(), best.Event,
			best.PeakSA, best.PeakSAPeriod)
	}
	fmt.Fprintf(&b, "%-8s %8s %8s %12s %s\n", "station", "records", "events", "maxPGA(gal)", "in event")
	for _, st := range c.Stations() {
		fmt.Fprintf(&b, "%-8s %8d %8d %12.1f %s\n", st.Station, st.Records, st.Events, st.MaxPGA, st.MaxPGAEvent)
	}
	return b.String()
}
