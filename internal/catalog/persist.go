package catalog

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"accelproc/internal/seismic"
)

// catalogJSON is the on-disk schema of a saved catalog.
type catalogJSON struct {
	Schema  string      `json:"schema"` // "accelproc.catalog/1"
	Entries []entryJSON `json:"entries"`
}

type entryJSON struct {
	Event        string  `json:"event"`
	Station      string  `json:"station"`
	Component    string  `json:"component"`
	PGA          float64 `json:"pga_gal"`
	TimePGA      float64 `json:"t_pga_s"`
	PGV          float64 `json:"pgv_cm_s"`
	TimePGV      float64 `json:"t_pgv_s"`
	PGD          float64 `json:"pgd_cm"`
	TimePGD      float64 `json:"t_pgd_s"`
	FSL          float64 `json:"fsl_hz"`
	FPL          float64 `json:"fpl_hz"`
	FPH          float64 `json:"fph_hz"`
	FSH          float64 `json:"fsh_hz"`
	PeakSA       float64 `json:"peak_sa_gal"`
	PeakSAPeriod float64 `json:"peak_sa_period_s"`
}

// Save writes the catalog to path as JSON, so a repository can accumulate
// across runs without re-reading every processed directory.
func (c *Catalog) Save(path string) error {
	doc := catalogJSON{Schema: "accelproc.catalog/1"}
	for _, e := range c.Entries() {
		doc.Entries = append(doc.Entries, entryJSON{
			Event:     e.Event,
			Station:   e.Station,
			Component: e.Component.String(),
			PGA:       e.Peaks.PGA, TimePGA: e.Peaks.TimePGA,
			PGV: e.Peaks.PGV, TimePGV: e.Peaks.TimePGV,
			PGD: e.Peaks.PGD, TimePGD: e.Peaks.TimePGD,
			FSL: e.Filter.FSL, FPL: e.Filter.FPL,
			FPH: e.Filter.FPH, FSH: e.Filter.FSH,
			PeakSA: e.PeakSA, PeakSAPeriod: e.PeakSAPeriod,
		})
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("catalog: save: %w", err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", " ")
	werr := enc.Encode(doc)
	cerr := f.Close()
	if werr != nil {
		return fmt.Errorf("catalog: save %s: %w", path, werr)
	}
	return cerr
}

// Load reads a catalog previously written by Save.
func Load(path string) (*Catalog, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("catalog: load: %w", err)
	}
	defer f.Close()
	var doc catalogJSON
	dec := json.NewDecoder(f)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("catalog: load %s: %w", path, err)
	}
	if doc.Schema != "accelproc.catalog/1" {
		return nil, fmt.Errorf("catalog: unsupported schema %q in %s", doc.Schema, path)
	}
	c := New()
	for i, je := range doc.Entries {
		comp, err := seismic.ParseComponent(je.Component)
		if err != nil {
			return nil, fmt.Errorf("catalog: entry %d: %w", i, err)
		}
		if je.Event == "" || je.Station == "" {
			return nil, fmt.Errorf("catalog: entry %d has empty identity", i)
		}
		e := RecordEntry{
			Event:     je.Event,
			Station:   je.Station,
			Component: comp,
			Peaks: seismic.PeakValues{
				PGA: je.PGA, TimePGA: je.TimePGA,
				PGV: je.PGV, TimePGV: je.TimePGV,
				PGD: je.PGD, TimePGD: je.TimePGD,
			},
			PeakSA:       je.PeakSA,
			PeakSAPeriod: je.PeakSAPeriod,
		}
		e.Filter.FSL, e.Filter.FPL = je.FSL, je.FPL
		e.Filter.FPH, e.Filter.FSH = je.FPH, je.FSH
		c.entries = append(c.entries, e)
		c.events[je.Event] = true
	}
	return c, nil
}

// Merge adds every entry of other into c.  Events already present in c are
// rejected (merge is the cross-run accumulation path, not a refresh).
func (c *Catalog) Merge(other *Catalog) error {
	names := make([]string, 0, len(other.events))
	for e := range other.events {
		names = append(names, e)
	}
	sort.Strings(names)
	for _, e := range names {
		if c.events[e] {
			return fmt.Errorf("catalog: merge: event %q already present", e)
		}
	}
	c.entries = append(c.entries, other.entries...)
	for _, e := range names {
		c.events[e] = true
	}
	return nil
}
