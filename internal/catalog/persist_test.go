package catalog

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	root := t.TempDir()
	dir := filepath.Join(root, "ev1")
	processEvent(t, dir, 41, 2)
	c := New()
	if err := c.IngestDir(dir, "ev1"); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(root, "catalog.json")
	if err := c.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(loaded.Entries(), c.Entries()) {
		t.Error("loaded entries differ from saved")
	}
	if !reflect.DeepEqual(loaded.Events(), c.Events()) {
		t.Errorf("events = %v, want %v", loaded.Events(), c.Events())
	}
}

func TestLoadRejectsBadFiles(t *testing.T) {
	dir := t.TempDir()
	if _, err := Load(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
	bad := filepath.Join(dir, "bad.json")
	cases := []string{
		"not json",
		`{"schema":"other/9","entries":[]}`,
		`{"schema":"accelproc.catalog/1","entries":[{"event":"","station":"A","component":"l"}]}`,
		`{"schema":"accelproc.catalog/1","entries":[{"event":"e","station":"A","component":"zz"}]}`,
		`{"schema":"accelproc.catalog/1","unknown":1}`,
	}
	for i, content := range cases {
		if err := os.WriteFile(bad, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Load(bad); err == nil {
			t.Errorf("case %d accepted: %s", i, content)
		}
	}
}

func TestMergeAccumulatesAcrossRuns(t *testing.T) {
	root := t.TempDir()
	d1 := filepath.Join(root, "ev1")
	d2 := filepath.Join(root, "ev2")
	processEvent(t, d1, 42, 2)
	processEvent(t, d2, 43, 3)

	a := New()
	if err := a.IngestDir(d1, "ev1"); err != nil {
		t.Fatal(err)
	}
	b := New()
	if err := b.IngestDir(d2, "ev2"); err != nil {
		t.Fatal(err)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if len(a.Events()) != 2 || a.Len() != 6+9 {
		t.Errorf("merged: %v events, %d entries", a.Events(), a.Len())
	}
	// Duplicate merge rejected, catalog unchanged.
	before := a.Len()
	if err := a.Merge(b); err == nil {
		t.Error("duplicate merge accepted")
	}
	if a.Len() != before {
		t.Error("failed merge modified the catalog")
	}
}

func TestSaveToUnwritablePath(t *testing.T) {
	c := New()
	if err := c.Save(filepath.Join(t.TempDir(), "no", "such", "dir", "c.json")); err == nil {
		t.Error("unwritable path accepted")
	}
}
