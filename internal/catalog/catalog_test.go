package catalog

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"accelproc/internal/pipeline"
	"accelproc/internal/response"
	"accelproc/internal/synth"
)

// processEvent generates and fully processes one event in dir.
func processEvent(t *testing.T, dir string, seed int64, files int) {
	t.Helper()
	ev, err := synth.Event(synth.EventSpec{
		Name: "e", Files: files, TotalPoints: files * 800, Magnitude: 5.0, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := pipeline.PrepareWorkDir(dir, ev); err != nil {
		t.Fatal(err)
	}
	opts := pipeline.Options{Response: response.Config{
		Method:  response.NigamJennings,
		Periods: response.LogPeriods(0.05, 5, 8),
	}}
	if _, err := pipeline.Run(context.Background(), dir, pipeline.FullParallel, opts); err != nil {
		t.Fatal(err)
	}
}

func TestIngestDirAndQueries(t *testing.T) {
	root := t.TempDir()
	d1 := filepath.Join(root, "2019-07-31")
	d2 := filepath.Join(root, "2018-11-24")
	processEvent(t, d1, 1, 2)
	processEvent(t, d2, 2, 3)

	c := New()
	if err := c.IngestDir(d1, ""); err != nil {
		t.Fatal(err)
	}
	if err := c.IngestDir(d2, ""); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 2*3+3*3 {
		t.Errorf("entries = %d, want 15", c.Len())
	}
	events := c.Events()
	if len(events) != 2 || events[0] != "2018-11-24" || events[1] != "2019-07-31" {
		t.Errorf("events = %v", events)
	}

	best, ok := c.MaxPGA()
	if !ok || best.Peaks.PGA <= 0 {
		t.Fatalf("MaxPGA = %+v, %v", best, ok)
	}
	if c.ExceedanceCount(0.0001) != c.Len() {
		t.Error("everything should exceed a tiny threshold")
	}
	if c.ExceedanceCount(1e9) != 0 {
		t.Error("nothing should exceed an absurd threshold")
	}

	hist := c.StationHistory("SS01")
	if len(hist) != 6 { // 3 components x 2 events
		t.Errorf("SS01 history = %d entries", len(hist))
	}
	if len(c.StationHistory("NOPE")) != 0 {
		t.Error("unknown station has history")
	}

	stats := c.Stations()
	if len(stats) != 3 { // SS01, SS02, SS03
		t.Fatalf("stations = %d", len(stats))
	}
	if stats[0].Station != "SS01" || stats[0].Events != 2 || stats[0].Records != 6 {
		t.Errorf("SS01 stats = %+v", stats[0])
	}
	if stats[2].Station != "SS03" || stats[2].Events != 1 {
		t.Errorf("SS03 stats = %+v", stats[2])
	}

	// Entries carry valid filter corners and response peaks.
	for _, e := range c.Entries() {
		if e.Filter.FSL <= 0 || e.Filter.FPL <= e.Filter.FSL {
			t.Errorf("entry %s/%s has bad corners %+v", e.Event, e.Station, e.Filter)
		}
		if e.PeakSA <= 0 || e.PeakSAPeriod <= 0 {
			t.Errorf("entry %s/%s has no response peak", e.Event, e.Station)
		}
	}

	report := c.Report()
	for _, want := range []string{"2 events", "15 component records", "largest PGA", "SS01"} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}
}

func TestIngestDirRejectsDuplicatesAndUnprocessed(t *testing.T) {
	root := t.TempDir()
	dir := filepath.Join(root, "ev")
	processEvent(t, dir, 3, 2)
	c := New()
	if err := c.IngestDir(dir, "ev"); err != nil {
		t.Fatal(err)
	}
	if err := c.IngestDir(dir, "ev"); err == nil {
		t.Error("duplicate event accepted")
	}
	empty := filepath.Join(root, "empty")
	if err := os.MkdirAll(empty, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := c.IngestDir(empty, "x"); err == nil {
		t.Error("unprocessed directory accepted")
	}
}

func TestIngestAll(t *testing.T) {
	root := t.TempDir()
	processEvent(t, filepath.Join(root, "ev1"), 4, 2)
	processEvent(t, filepath.Join(root, "ev2"), 5, 2)
	if err := os.MkdirAll(filepath.Join(root, "not-processed"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(root, "stray-file"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	c := New()
	n, err := c.IngestAll(root)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("ingested %d events, want 2", n)
	}
	if len(c.Events()) != 2 {
		t.Errorf("events = %v", c.Events())
	}
	if _, err := c.IngestAll(filepath.Join(root, "missing")); err == nil {
		t.Error("missing root accepted")
	}
}

func TestIngestDirRejectsPartialProducts(t *testing.T) {
	root := t.TempDir()
	dir := filepath.Join(root, "ev")
	processEvent(t, dir, 6, 2)
	// Delete one R file: ingestion must fail loudly, not silently skip.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	removed := false
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".r") && !removed {
			if err := os.Remove(filepath.Join(dir, e.Name())); err != nil {
				t.Fatal(err)
			}
			removed = true
		}
	}
	if !removed {
		t.Fatal("no R file found to remove")
	}
	c := New()
	if err := c.IngestDir(dir, "ev"); err == nil {
		t.Error("directory with missing R product accepted")
	}
}
