// Package accelproc is a from-scratch Go reproduction of "Parallelizing
// Accelerographic Records Processing" (IPPS 2024): the strong-motion record
// processing chain of El Salvador's Observatory of Natural Threats, its
// sequential optimization, and its partial and full parallelizations.
//
// The library lives under internal/:
//
//	parallel  OpenMP-equivalent runtime (parallel loops, task groups)
//	dsp       FFT, Hamming band-pass FIR filters, integration, detrend
//	seismic   domain model and ground-motion metrics
//	synth     stochastic accelerogram generator (the data substitute)
//	smformat  V1/V2/F/R/GEM and metadata file formats
//	fourier   spectra and FPL/FSL inflection picking
//	response  elastic response spectra (Duhamel and Nigam-Jennings)
//	plotps    PostScript plot writer
//	pipeline  the 20 processes, 11 stages, and four implementations
//	simsched  simulated multi-processor platform (schedule makespans)
//	bench     the evaluation harness for Table I and Figures 11-13
//
// The executables are cmd/smproc (process a work directory), cmd/synthgen
// (generate synthetic events), and cmd/benchtables (regenerate the paper's
// evaluation).  See README.md, DESIGN.md, and EXPERIMENTS.md.
package accelproc
