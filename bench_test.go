package accelproc

// This file holds the testing.B benchmarks that regenerate the paper's
// evaluation artifacts — one benchmark per table/figure — plus the ablation
// benchmarks for the design choices called out in DESIGN.md §6.
//
// The benchmarks run a reduced workload (quarter of the reference scale) so
// "go test -bench=." completes in minutes; the full-size evaluation is the
// job of cmd/benchtables, whose output EXPERIMENTS.md records.  Benchmarks
// that depend on parallel wall time use the simulated 8-processor platform
// (see internal/simsched) and report its virtual seconds as "sim-sec/op",
// so results are comparable across hosts with any core count.

import (
	"context"
	"fmt"
	"os"
	"testing"
	"time"

	"accelproc/internal/bench"
	"accelproc/internal/fourier"
	"accelproc/internal/pipeline"
	"accelproc/internal/response"
	"accelproc/internal/seismic"
	"accelproc/internal/simsched"
	"accelproc/internal/smformat"
	"accelproc/internal/synth"
)

// benchScale is the workload scale for the in-tree benchmarks: a quarter of
// the calibrated reference scale keeps a full -bench=. run fast.
const benchScale = bench.ReferenceScale / 4

func benchConfig(b *testing.B) bench.Config {
	b.Helper()
	return bench.Config{
		Scale:         benchScale,
		SimProcessors: bench.PaperProcessors,
		WorkRoot:      b.TempDir(),
	}
}

// runVariantOnce prepares a work dir for the event and runs one variant,
// returning the charged (virtual) total.
func runVariantOnce(b *testing.B, ev synth.EventSpec, v pipeline.Variant, cfg bench.Config) pipeline.Timings {
	b.Helper()
	cfg.Variants = []pipeline.Variant{v}
	res, err := bench.RunEvent(context.Background(), ev, cfg)
	if err != nil {
		b.Fatal(err)
	}
	return res.Timings[v]
}

// BenchmarkTable1 regenerates one Table I row per sub-benchmark: every
// paper event processed by every implementation, reporting the simulated
// execution time of each variant.
func BenchmarkTable1(b *testing.B) {
	for _, spec := range synth.PaperEvents() {
		spec := spec
		b.Run(spec.Name, func(b *testing.B) {
			cfg := benchConfig(b)
			for i := 0; i < b.N; i++ {
				cfg.Variants = nil // all five
				res, err := bench.RunEvent(context.Background(), spec, cfg)
				if err != nil {
					b.Fatal(err)
				}
				if i == b.N-1 {
					for _, v := range pipeline.Variants {
						b.ReportMetric(res.Times[v].Seconds(), fmt.Sprintf("sim-sec/%s", shortVariant(v)))
					}
					b.ReportMetric(res.Speedup(), "speedup")
				}
			}
		})
	}
}

func shortVariant(v pipeline.Variant) string {
	switch v {
	case pipeline.SeqOriginal:
		return "seqori"
	case pipeline.SeqOptimized:
		return "seqopt"
	case pipeline.PartialParallel:
		return "partpar"
	case pipeline.FullParallel:
		return "fullpar"
	case pipeline.Pipelined:
		return "pipe"
	}
	return "unknown"
}

// BenchmarkFig11Stages regenerates Figure 11: per-stage sequential and
// fully-parallel times on the largest event, reported as metrics.
func BenchmarkFig11Stages(b *testing.B) {
	spec := synth.PaperEvents()[5] // Jul-31-2019
	cfg := benchConfig(b)
	for i := 0; i < b.N; i++ {
		f11, err := bench.RunFig11(context.Background(), spec, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, st := range f11.Stages {
				b.ReportMetric(st.Speedup(), fmt.Sprintf("speedup-stage-%s", st.Stage))
			}
			b.ReportMetric(f11.SeqStageShare(pipeline.StageIX)*100, "stageIX-share-%")
		}
	}
}

// BenchmarkFig12Variants regenerates Figure 12's per-variant series on a
// mid-size event, one sub-benchmark per implementation.
func BenchmarkFig12Variants(b *testing.B) {
	spec := synth.PaperEvents()[2] // Jul-10-2019: 9 files
	for _, v := range pipeline.Variants {
		v := v
		b.Run(v.String(), func(b *testing.B) {
			cfg := benchConfig(b)
			for i := 0; i < b.N; i++ {
				tim := runVariantOnce(b, spec, v, cfg)
				if i == b.N-1 {
					b.ReportMetric(tim.Total.Seconds(), "sim-sec")
				}
			}
		})
	}
}

// BenchmarkFig13Throughput regenerates Figure 13's throughput series:
// fully-parallel data points per second across event sizes.
func BenchmarkFig13Throughput(b *testing.B) {
	for _, spec := range []synth.EventSpec{synth.PaperEvents()[0], synth.PaperEvents()[3], synth.PaperEvents()[5]} {
		spec := spec
		b.Run(spec.Name, func(b *testing.B) {
			cfg := benchConfig(b)
			cfg.Variants = []pipeline.Variant{pipeline.SeqOriginal, pipeline.FullParallel}
			for i := 0; i < b.N; i++ {
				res, err := bench.RunEvent(context.Background(), spec, cfg)
				if err != nil {
					b.Fatal(err)
				}
				if i == b.N-1 {
					b.ReportMetric(res.PointsPerSecond(), "pts/sim-sec")
					b.ReportMetric(res.SeqPointsPerSecond(), "seq-pts/sim-sec")
				}
			}
		})
	}
}

// --- Ablations (DESIGN.md §6) ---

// BenchmarkAblationTempFolder compares the paper's temp-folder protocol for
// stages IV/V/VIII against direct in-memory parallel loops.
func BenchmarkAblationTempFolder(b *testing.B) {
	spec := synth.PaperEvents()[2]
	for _, noTemp := range []bool{false, true} {
		noTemp := noTemp
		name := "temp-folders"
		if noTemp {
			name = "direct-loops"
		}
		b.Run(name, func(b *testing.B) {
			ev, err := synth.Event(spec.Scale(benchScale))
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				dir := b.TempDir()
				if err := pipeline.PrepareWorkDir(dir, ev); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				res, err := pipeline.Run(context.Background(), dir, pipeline.FullParallel, pipeline.Options{
					SimProcessors: bench.PaperProcessors,
					NoTempFolders: noTemp,
					Response: response.Config{
						Method:  response.Duhamel,
						Periods: response.LogPeriods(0.05, 10, bench.ShapePeriods),
					},
				})
				if err != nil {
					b.Fatal(err)
				}
				if i == b.N-1 {
					staged := res.Timings.Stage[pipeline.StageIV] +
						res.Timings.Stage[pipeline.StageV] +
						res.Timings.Stage[pipeline.StageVIII]
					b.ReportMetric(staged.Seconds(), "sim-sec-stages-IV+V+VIII")
				}
				b.StopTimer()
				os.RemoveAll(dir)
				b.StartTimer()
			}
		})
	}
}

// BenchmarkAblationResponseMethod compares the legacy O(D²) Duhamel method
// against the O(D) Nigam-Jennings recursion on one component record.
func BenchmarkAblationResponseMethod(b *testing.B) {
	rec, err := synth.Record(synth.Params{
		Station: "SS01", Seed: 9, DT: 0.01, Samples: 4000,
		Magnitude: 5.5, Distance: 30,
	})
	if err != nil {
		b.Fatal(err)
	}
	tr := rec.Accel[0]
	for _, m := range []response.Method{response.Duhamel, response.NigamJennings} {
		m := m
		b.Run(m.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, _, err := response.Oscillator(tr, 1.0, 0.05, m); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationSchedule compares static and dynamic scheduling of a
// parallel loop with strongly uneven iteration costs on the simulated
// platform (the record-size imbalance of real events).
func BenchmarkAblationSchedule(b *testing.B) {
	// Synthetic uneven task costs: record sizes of the largest event.
	spec := synth.PaperEvents()[5].Scale(benchScale)
	ev, err := synth.Event(spec)
	if err != nil {
		b.Fatal(err)
	}
	durs := make([]time.Duration, len(ev.Records))
	for i, r := range ev.Records {
		d := time.Duration(r.Samples())
		durs[i] = d * d // stage IX cost is quadratic in record length
	}
	b.Run("static", func(b *testing.B) {
		var makespan time.Duration
		for i := 0; i < b.N; i++ {
			makespan = simsched.MakespanStatic(durs, bench.PaperProcessors, simsched.ContentionCPU)
		}
		b.ReportMetric(float64(makespan), "sim-units")
	})
	b.Run("dynamic", func(b *testing.B) {
		var makespan time.Duration
		for i := 0; i < b.N; i++ {
			makespan = simsched.Makespan(durs, bench.PaperProcessors, simsched.ContentionCPU)
		}
		b.ReportMetric(float64(makespan), "sim-units")
	})
}

// BenchmarkAblationInflection compares the paper's early-termination
// inflection scan against the full-spectrum scan.
func BenchmarkAblationInflection(b *testing.B) {
	// A large spectrum with a corner early in the scan, where early
	// termination pays off most.
	const nbins = 1 << 16
	f := smformat.Fourier{
		Station: "SS01", Component: seismic.Longitudinal, DF: 0.0005,
		Accel: make([]float64, nbins), Vel: make([]float64, nbins), Disp: make([]float64, nbins),
	}
	for k := 1; k < nbins; k++ {
		fk := float64(k) * f.DF
		f.Vel[k] = fk + 0.81/fk // corner at 0.9 Hz: met early in the scan
		f.Accel[k] = fk
		f.Disp[k] = 1 / fk
	}
	for _, full := range []bool{false, true} {
		full := full
		name := "early-termination"
		if full {
			name = "full-scan"
		}
		b.Run(name, func(b *testing.B) {
			cfg := fourier.PickConfig{FullScan: full}
			for i := 0; i < b.N; i++ {
				if _, err := fourier.CalculateInflectionPoint(f, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationThreads sweeps the simulated processor count for the
// fully parallelized pipeline: the Amdahl curve behind Figure 13.
func BenchmarkAblationThreads(b *testing.B) {
	spec := synth.PaperEvents()[2]
	ev, err := synth.Event(spec.Scale(benchScale))
	if err != nil {
		b.Fatal(err)
	}
	for _, procs := range []int{1, 2, 4, 8, 16} {
		procs := procs
		b.Run(fmt.Sprintf("procs-%d", procs), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				dir := b.TempDir()
				if err := pipeline.PrepareWorkDir(dir, ev); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				res, err := pipeline.Run(context.Background(), dir, pipeline.FullParallel, pipeline.Options{
					SimProcessors: procs,
					Response: response.Config{
						Method:  response.Duhamel,
						Periods: response.LogPeriods(0.05, 10, bench.ShapePeriods),
					},
				})
				if err != nil {
					b.Fatal(err)
				}
				if i == b.N-1 {
					b.ReportMetric(res.Timings.Total.Seconds(), "sim-sec")
				}
				b.StopTimer()
				os.RemoveAll(dir)
				b.StartTimer()
			}
		})
	}
}
