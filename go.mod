module accelproc

go 1.22
